"""Tests for the per-queue DRAM content store."""

import pytest

from repro.dram.store import DRAMQueueStore
from repro.errors import BufferOverflowError, QueueEmptyError
from repro.types import Cell


def _cells(queue, count, start=0):
    return [Cell(queue=queue, seqno=start + i) for i in range(count)]


class TestFIFOBehaviour:
    def test_push_then_pop_preserves_order(self):
        store = DRAMQueueStore(num_queues=2)
        store.push_many(_cells(0, 5))
        block = store.pop_block(0, 3)
        assert [c.seqno for c in block] == [0, 1, 2]
        block = store.pop_block(0, 3)
        assert [c.seqno for c in block] == [3, 4]

    def test_queues_are_independent(self):
        store = DRAMQueueStore(num_queues=3)
        store.push_many(_cells(0, 2))
        store.push_many(_cells(2, 2))
        assert store.occupancy(0) == 2
        assert store.occupancy(1) == 0
        assert store.occupancy(2) == 2
        assert store.occupancy() == 4

    def test_peek_does_not_remove(self):
        store = DRAMQueueStore(num_queues=1)
        store.push_many(_cells(0, 2))
        assert store.peek(0).seqno == 0
        assert store.occupancy(0) == 2

    def test_peek_empty_raises(self):
        store = DRAMQueueStore(num_queues=1)
        with pytest.raises(QueueEmptyError):
            store.peek(0)

    def test_pop_block_requires_positive_count(self):
        store = DRAMQueueStore(num_queues=1)
        with pytest.raises(ValueError):
            store.pop_block(0, 0)

    def test_unknown_queue_rejected(self):
        store = DRAMQueueStore(num_queues=2)
        with pytest.raises(ValueError):
            store.push(Cell(queue=5, seqno=0))
        with pytest.raises(ValueError):
            store.occupancy(9)


class TestCapacity:
    def test_overflow_raises(self):
        store = DRAMQueueStore(num_queues=1, capacity_cells=3)
        store.push_many(_cells(0, 3))
        with pytest.raises(BufferOverflowError):
            store.push(Cell(queue=0, seqno=3))

    def test_peak_occupancy_tracked(self):
        store = DRAMQueueStore(num_queues=1)
        store.push_many(_cells(0, 4))
        store.pop_block(0, 4)
        assert store.peak_occupancy == 4
        assert store.occupancy() == 0


class TestBacklogMode:
    def test_backlogged_queue_synthesises_cells(self):
        store = DRAMQueueStore(num_queues=2)
        store.mark_backlogged([1])
        block = store.pop_block(1, 4)
        assert [c.seqno for c in block] == [0, 1, 2, 3]
        block = store.pop_block(1, 2)
        assert [c.seqno for c in block] == [4, 5]

    def test_backlogged_queue_serves_real_cells_first(self):
        store = DRAMQueueStore(num_queues=1)
        store.push_many(_cells(0, 2))
        store.mark_backlogged([0])
        block = store.pop_block(0, 4)
        assert [c.seqno for c in block] == [0, 1, 2, 3]  # synthetic cells continue the stream

    def test_has_cells(self):
        store = DRAMQueueStore(num_queues=2)
        store.mark_backlogged([0])
        assert store.has_cells(0)
        assert not store.has_cells(1)
        store.push(Cell(queue=1, seqno=0))
        assert store.has_cells(1)
