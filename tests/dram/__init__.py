"""Tests for the dram layer."""
