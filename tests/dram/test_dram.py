"""Tests for the banked DRAM array."""

import pytest

from repro.dram.dram import BankedDRAM
from repro.dram.timing import DRAMTiming
from repro.errors import BankConflictError, ConfigurationError
from repro.types import ReplenishRequest, TransferDirection


def _request(queue=0, cells=2, slot=0, block=0):
    return ReplenishRequest(queue=queue, direction=TransferDirection.READ,
                            cells=cells, issue_slot=slot, block_index=block)


@pytest.fixture
def dram():
    return BankedDRAM(DRAMTiming(random_access_slots=4, num_banks=8))


class TestAccessLifecycle:
    def test_start_and_complete(self, dram):
        job = dram.start_access(_request(), bank=3, slot=0)
        assert job.finish_slot == 4
        assert dram.in_flight_count == 1
        assert dram.pop_completed(3) == []
        done = dram.pop_completed(4)
        assert len(done) == 1
        assert done[0].bank == 3
        assert dram.in_flight_count == 0
        assert dram.completed_count == 1

    def test_parallel_accesses_to_different_banks(self, dram):
        for bank in range(8):
            dram.start_access(_request(queue=bank), bank=bank, slot=0)
        assert dram.in_flight_count == 8
        assert sorted(dram.busy_banks(0)) == list(range(8))
        assert len(dram.pop_completed(4)) == 8

    def test_conflict_detected(self, dram):
        dram.start_access(_request(), bank=2, slot=0)
        with pytest.raises(BankConflictError):
            dram.start_access(_request(), bank=2, slot=2)
        assert dram.total_conflicts == 1

    def test_relaxed_mode_counts_but_does_not_raise(self):
        dram = BankedDRAM(DRAMTiming(random_access_slots=4, num_banks=2), strict=False)
        dram.start_access(_request(), bank=0, slot=0)
        dram.start_access(_request(), bank=0, slot=1)
        assert dram.total_conflicts == 1

    def test_bank_index_out_of_range(self, dram):
        with pytest.raises(ConfigurationError):
            dram.start_access(_request(), bank=99, slot=0)


class TestIntrospection:
    def test_access_histogram(self, dram):
        dram.start_access(_request(), bank=1, slot=0)
        dram.start_access(_request(), bank=1, slot=4)
        dram.start_access(_request(), bank=5, slot=4)
        histogram = dram.access_histogram()
        assert histogram[1] == 2
        assert histogram[5] == 1
        assert histogram[0] == 0

    def test_is_bank_busy(self, dram):
        dram.start_access(_request(), bank=6, slot=10)
        assert dram.is_bank_busy(6, 12)
        assert not dram.is_bank_busy(6, 14)
        assert not dram.is_bank_busy(0, 12)

    def test_reset(self, dram):
        dram.start_access(_request(), bank=0, slot=0)
        dram.reset()
        assert dram.in_flight_count == 0
        assert dram.total_conflicts == 0
        assert dram.busy_banks(0) == []
