"""Tests for the DRAM timing parameters."""

import pytest

from repro.constants import OC_LINE_RATES_BPS
from repro.dram.timing import DRAMTiming
from repro.errors import ConfigurationError


class TestValidation:
    def test_rejects_non_positive_access_time(self):
        with pytest.raises(ConfigurationError):
            DRAMTiming(random_access_slots=0)

    def test_rejects_non_positive_banks(self):
        with pytest.raises(ConfigurationError):
            DRAMTiming(random_access_slots=4, num_banks=0)

    def test_rejects_non_positive_bus(self):
        with pytest.raises(ConfigurationError):
            DRAMTiming(random_access_slots=4, address_bus_slots=0)

    def test_defaults(self):
        timing = DRAMTiming(random_access_slots=8)
        assert timing.num_banks == 1
        assert timing.address_bus_slots == 1


class TestFromPhysical:
    def test_48ns_at_oc3072_is_15_slots(self):
        timing = DRAMTiming.from_physical(OC_LINE_RATES_BPS["OC-3072"], 48.0)
        assert timing.random_access_slots == 15  # 48 / 3.2

    def test_48ns_at_oc768_rounds_up(self):
        timing = DRAMTiming.from_physical(OC_LINE_RATES_BPS["OC-768"], 48.0)
        assert timing.random_access_slots == 4  # ceil(48 / 12.8) = 4

    def test_never_below_one_slot(self):
        timing = DRAMTiming.from_physical(OC_LINE_RATES_BPS["OC-192"], 1.0)
        assert timing.random_access_slots == 1

    def test_bank_count_carried_through(self):
        timing = DRAMTiming.from_physical(OC_LINE_RATES_BPS["OC-768"], 48.0, num_banks=64)
        assert timing.num_banks == 64
