"""Tests for the CACTI-style analytical memory model."""

import pytest

from repro.tech.cacti import CactiModel


@pytest.fixture
def model():
    return CactiModel()


class TestSRAMModel:
    def test_access_time_monotone_in_capacity(self, model):
        small = model.sram_access_time_ns(64 * 1024 * 8)
        large = model.sram_access_time_ns(1024 * 1024 * 8)
        assert large > small

    def test_area_monotone_and_roughly_linear(self, model):
        one = model.sram_area_cm2(1024 * 1024 * 8)
        two = model.sram_area_cm2(2 * 1024 * 1024 * 8)
        assert two == pytest.approx(2 * one, rel=1e-6)

    def test_multi_port_costs_time_and_area(self, model):
        bits = 256 * 1024 * 8
        assert model.sram_access_time_ns(bits, ports=2) > model.sram_access_time_ns(bits, ports=1)
        assert model.sram_area_cm2(bits, ports=2) > model.sram_area_cm2(bits, ports=1)

    def test_reasonable_absolute_values_at_013um(self, model):
        # 64 kB direct-mapped SRAM: around 1-2 ns and a few mm^2.
        time_ns = model.sram_access_time_ns(64 * 1024 * 8)
        area = model.sram_area_cm2(64 * 1024 * 8)
        assert 0.5 < time_ns < 3.0
        assert 0.001 < area < 0.1

    def test_estimate_bundles_values(self, model):
        estimate = model.sram_estimate(1024 * 8, ports=1)
        assert estimate.bits == 1024 * 8
        assert estimate.access_time_ns > 0
        assert estimate.area_cm2 > 0

    def test_invalid_inputs(self, model):
        with pytest.raises(ValueError):
            model.sram_access_time_ns(0)
        with pytest.raises(ValueError):
            model.sram_area_cm2(100, ports=0)


class TestCAMModel:
    def test_search_time_grows_with_entries(self, model):
        small = model.cam_access_time_ns(entries=1024, tag_bits=24, data_bits_per_entry=512)
        large = model.cam_access_time_ns(entries=65536, tag_bits=24, data_bits_per_entry=512)
        assert large > 4 * small  # dominated by the linear search term

    def test_area_includes_tag_and_data(self, model):
        area = model.cam_area_cm2(entries=4096, tag_bits=24, data_bits_per_entry=512)
        data_only = model.sram_area_cm2(4096 * 512)
        assert area > data_only

    def test_large_cam_misses_oc3072_budget(self, model):
        # 6.2 MB worth of cells (about 100k entries) cannot be searched in
        # 3.2 ns — the Figure 8 conclusion for OC-3072 RADS.
        entries = 100_000
        assert model.cam_access_time_ns(entries, 25, 512) > 3.2

    def test_small_cam_meets_oc3072_budget(self, model):
        # A few thousand entries (the CFDS sizes) fit within 3.2 ns.
        assert model.cam_access_time_ns(3000, 25, 512) < 3.2

    def test_invalid_inputs(self, model):
        with pytest.raises(ValueError):
            model.cam_access_time_ns(0, 10, 512)
        with pytest.raises(ValueError):
            model.cam_area_cm2(10, 0, 512)
