"""Tests for the technology-process descriptor."""

import pytest

from repro.tech.process import DEFAULT_PROCESS, TechnologyProcess


class TestTechnologyProcess:
    def test_default_is_013um(self):
        assert DEFAULT_PROCESS.feature_um == pytest.approx(0.13)

    def test_scaling_shrinks_area_quadratically_and_delay_linearly(self):
        scaled = DEFAULT_PROCESS.scaled_to(0.065)
        assert scaled.sram_cell_area_um2 == pytest.approx(
            DEFAULT_PROCESS.sram_cell_area_um2 / 4, rel=1e-6)
        assert scaled.t_fixed_ns == pytest.approx(DEFAULT_PROCESS.t_fixed_ns / 2, rel=1e-6)

    def test_scaling_up_grows_parameters(self):
        scaled = DEFAULT_PROCESS.scaled_to(0.26)
        assert scaled.cam_cell_area_um2 > DEFAULT_PROCESS.cam_cell_area_um2
        assert scaled.t_cam_search_ns_per_entry > DEFAULT_PROCESS.t_cam_search_ns_per_entry

    def test_invalid_feature_size(self):
        with pytest.raises(ValueError):
            TechnologyProcess(feature_um=0)
        with pytest.raises(ValueError):
            DEFAULT_PROCESS.scaled_to(-0.09)
