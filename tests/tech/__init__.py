"""Tests for the tech layer."""
