"""Tests for the shared-SRAM buffer organisations (Section 7.1)."""

import pytest

from repro.tech.sram_designs import (
    GlobalCAMDesign,
    UnifiedLinkedListDesign,
    best_design,
)


class TestGlobalCAMDesign:
    def test_tag_bits_cover_queue_and_order(self):
        design = GlobalCAMDesign(num_queues=512, order_bits=16)
        assert design.tag_bits() == 9 + 16

    def test_access_time_grows_with_capacity(self):
        design = GlobalCAMDesign(num_queues=128)
        assert design.access_time_ns(10_000) > design.access_time_ns(1_000)

    def test_meets_budget_helper(self):
        design = GlobalCAMDesign(num_queues=128)
        assert design.meets_budget(1_000, budget_ns=12.8)
        assert not design.meets_budget(200_000, budget_ns=3.2)

    def test_invalid_capacity(self):
        design = GlobalCAMDesign(num_queues=4)
        with pytest.raises(ValueError):
            design.access_time_ns(0)


class TestUnifiedLinkedListDesign:
    def test_entry_includes_pointer(self):
        design = UnifiedLinkedListDesign(num_queues=128)
        assert design.entry_bits(capacity_cells=1024) == 512 + 10

    def test_time_multiplexing_triples_access_time(self):
        time_mux = UnifiedLinkedListDesign(num_queues=128, time_multiplexed=True)
        multi_port = UnifiedLinkedListDesign(num_queues=128, time_multiplexed=False)
        cells = 4096
        assert time_mux.access_time_ns(cells) > 2.5 * multi_port.access_time_ns(cells) / 1.7
        # and the time-muxed variant is the smaller one
        assert time_mux.area_cm2(cells) < multi_port.area_cm2(cells)

    def test_cfds_variant_only_grows_pointer_table(self):
        base = UnifiedLinkedListDesign(num_queues=128, lists_per_queue=1)
        cfds = UnifiedLinkedListDesign(num_queues=128, lists_per_queue=4)
        cells = 4096
        assert cfds.pointer_table_bits(cells) == 4 * base.pointer_table_bits(cells)
        assert cfds.area_cm2(cells) > base.area_cm2(cells)
        assert cfds.access_time_ns(cells) == base.access_time_ns(cells)

    def test_area_smaller_than_cam_for_same_capacity(self):
        # The linked list is the paper's minimum-area design.
        cells = 8192
        linked = UnifiedLinkedListDesign(num_queues=128)
        cam = GlobalCAMDesign(num_queues=128)
        assert linked.area_cm2(cells) < cam.area_cm2(cells)


class TestBestDesign:
    def test_picks_fastest(self):
        cam = GlobalCAMDesign(num_queues=128)
        linked = UnifiedLinkedListDesign(num_queues=128)
        cells = 4096
        fastest = best_design([cam, linked], cells)
        expected = cam if cam.access_time_ns(cells) < linked.access_time_ns(cells) else linked
        assert fastest is expected

    def test_budget_filter(self):
        cam = GlobalCAMDesign(num_queues=512)
        linked = UnifiedLinkedListDesign(num_queues=512)
        # At very large capacities nothing meets the OC-3072 budget.
        assert best_design([cam, linked], 150_000, budget_ns=3.2) is None
