"""Streamed switch execution vs the sharded jobs path.

``SwitchModel.run_stream`` feeds the fabric's per-egress trace chunks
straight into open-ended port sessions, never materialising a full egress
trace; the merged report must nevertheless be bit-identical to the two-stage
jobs path for every chunk size — both modes build their ports from the same
:func:`~repro.switch.model.port_template`.
"""

import pytest

from repro.switch.model import FabricStream, SwitchModel, run_fabric
from repro.switch.registry import get_switch_scenario, switch_scenario_names


def small(name, ports=4, slots=600):
    return get_switch_scenario(name).with_overrides(num_ports=ports,
                                                    num_slots=slots)


@pytest.mark.parametrize("chunk_slots", [None, 100, 137, 600, 10_000])
def test_stream_matches_jobs_path(chunk_slots):
    scenario = small("hotspot-egress")
    model = SwitchModel(scenario)
    jobs_report = model.run(jobs=1)
    stream_report = model.run_stream(chunk_slots=chunk_slots)
    assert stream_report.fabric == jobs_report.fabric
    assert stream_report.ports == jobs_report.ports
    assert stream_report.summary() == jobs_report.summary()


@pytest.mark.parametrize("name", switch_scenario_names())
def test_stream_matches_jobs_path_on_every_registered_switch(name):
    scenario = small(name)
    model = SwitchModel(scenario)
    jobs_report = model.run(jobs=1)
    stream_report = model.run_stream(chunk_slots=151)
    assert stream_report.fabric == jobs_report.fabric
    assert stream_report.ports == jobs_report.ports


@pytest.mark.parametrize("engine", ["reference", "batched", "array"])
def test_stream_engines_agree(engine):
    scenario = small("uniform")
    report = SwitchModel(scenario).run_stream(engine=engine, chunk_slots=211)
    baseline = SwitchModel(scenario).run_stream(engine="array",
                                                chunk_slots=211)
    assert report.ports == baseline.ports
    assert report.fabric == baseline.fabric


def test_fabric_stream_chunks_concatenate_to_run_fabric():
    scenario = small("incast", ports=5, slots=500)
    whole_traces, whole_stats = run_fabric(scenario)

    stream = FabricStream(scenario, chunk_slots=73)
    rebuilt = [[] for _ in range(scenario.num_ports)]
    seen_starts = []
    for start, chunk_traces in stream.chunks():
        seen_starts.append(start)
        lengths = {len(chunk) for chunk in chunk_traces}
        assert len(lengths) == 1  # every egress advances in lockstep
        assert lengths.pop() <= 73
        for egress, chunk in enumerate(chunk_traces):
            rebuilt[egress].extend(chunk)
    assert rebuilt == whole_traces
    assert stream.stats == whole_stats
    assert seen_starts == sorted(seen_starts)
    # The chunk starts tile the stage exactly.
    assert seen_starts[0] == 0
    assert sum(len(c) for c in rebuilt) // scenario.num_ports \
        == whole_stats.total_slots


def test_fabric_stream_stats_only_after_exhaustion():
    scenario = small("uniform")
    stream = FabricStream(scenario, chunk_slots=100)
    iterator = stream.chunks()
    next(iterator)
    assert stream.stats is None
    for _ in iterator:
        pass
    assert stream.stats is not None
