"""Unit tests of the crossbar fabric arbiters."""

import pytest

from repro.errors import ConfigurationError
from repro.switch.fabric import (
    FABRIC_TYPES,
    ISLIPFabricArbiter,
    PriorityFabricArbiter,
    RandomFabricArbiter,
)

ALL_POLICIES = sorted(FABRIC_TYPES)


def _make(policy: str, num_ports: int = 4):
    cls = FABRIC_TYPES[policy]
    if policy == "random":
        return cls(num_ports, seed=7)
    return cls(num_ports)


def _assert_valid_matching(matches, requests, num_ports):
    ingresses = [i for i, _ in matches]
    egresses = [e for _, e in matches]
    assert len(set(ingresses)) == len(ingresses), "ingress matched twice"
    assert len(set(egresses)) == len(egresses), "egress matched twice"
    for ingress, egress in matches:
        assert 0 <= ingress < num_ports
        assert egress in requests[ingress], "match not backed by a request"


class TestMatchingInvariants:
    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_empty_requests_match_nothing(self, policy):
        arbiter = _make(policy)
        assert arbiter.match(0, [[], [], [], []]) == []

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_matching_is_conflict_free_and_backed(self, policy):
        arbiter = _make(policy)
        requests = [[0, 2], [0, 1, 3], [2], [0, 3]]
        for slot in range(50):
            matches = arbiter.match(slot, requests)
            _assert_valid_matching(matches, requests, 4)
            assert matches, "work-conserving policies must match something"

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_single_requester_always_served(self, policy):
        arbiter = _make(policy)
        for slot in range(10):
            assert arbiter.match(slot, [[], [3], [], []]) == [(1, 3)]

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_full_contention_serves_exactly_one(self, policy):
        """All ingresses request only egress 0: exactly one wins per slot."""
        arbiter = _make(policy)
        requests = [[0]] * 4
        for slot in range(20):
            matches = arbiter.match(slot, requests)
            assert len(matches) == 1
            assert matches[0][1] == 0

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_out_of_range_request_rejected(self, policy):
        arbiter = _make(policy)
        with pytest.raises(ConfigurationError):
            arbiter.match(0, [[4], [], [], []])

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_rejects_non_positive_port_count(self, policy):
        with pytest.raises(ConfigurationError):
            FABRIC_TYPES[policy](0)


class TestISLIP:
    def test_pointers_rotate_under_contention(self):
        """Persistent single-egress contention is served round-robin: after
        ingress i wins, the grant pointer moves past it, so the others take
        their turns before i wins again."""
        arbiter = ISLIPFabricArbiter(4)
        requests = [[0]] * 4
        winners = [arbiter.match(slot, requests)[0][0] for slot in range(8)]
        assert sorted(winners[:4]) == [0, 1, 2, 3]
        assert winners[:4] == winners[4:]

    def test_permutation_requests_fully_matched(self):
        """A contention-free permutation must saturate the crossbar."""
        arbiter = ISLIPFabricArbiter(4)
        requests = [[1], [2], [3], [0]]
        matches = arbiter.match(0, requests)
        assert sorted(matches) == [(0, 1), (1, 2), (2, 3), (3, 0)]

    def test_pointer_not_advanced_on_unaccepted_grant(self):
        """Ingress 0 requests both egresses; both grant to it, it accepts
        egress 0 (its accept pointer starts there).  Egress 1's grant was
        not accepted, so only the accept pointer moved — next slot the same
        requests yield egress 1."""
        arbiter = ISLIPFabricArbiter(2)
        assert arbiter.match(0, [[0, 1], []]) == [(0, 0)]
        assert arbiter.match(1, [[0, 1], []]) == [(0, 1)]

    def test_desynchronised_pointers_reach_full_throughput(self):
        """Under all-to-all requests, iSLIP converges to N matches/slot."""
        arbiter = ISLIPFabricArbiter(4)
        requests = [[0, 1, 2, 3]] * 4
        sizes = [len(arbiter.match(slot, requests)) for slot in range(12)]
        assert max(sizes) == 4
        assert sizes[-1] == 4  # converged and stays converged


class TestPriority:
    def test_lowest_ingress_always_wins(self):
        arbiter = PriorityFabricArbiter(4)
        requests = [[0], [0], [0], [0]]
        for slot in range(5):
            assert arbiter.match(slot, requests) == [(0, 0)]

    def test_lowest_egress_accepted_on_multiple_grants(self):
        arbiter = PriorityFabricArbiter(4)
        assert arbiter.match(0, [[1, 2], [], [], []]) == [(0, 1)]


class TestRandom:
    def test_same_seed_same_stream(self):
        a = RandomFabricArbiter(4, seed=3)
        b = RandomFabricArbiter(4, seed=3)
        requests = [[0, 1], [0, 1], [2], [0, 3]]
        for slot in range(30):
            assert a.match(slot, requests) == b.match(slot, requests)

    def test_different_seeds_diverge(self):
        a = RandomFabricArbiter(8, seed=1)
        b = RandomFabricArbiter(8, seed=2)
        requests = [[0, 1, 2, 3]] * 8
        streams = [[a.match(s, requests) for s in range(20)],
                   [b.match(s, requests) for s in range(20)]]
        assert streams[0] != streams[1]
