"""Smoke tests of ``python -m repro switch`` and the switch-suite experiment."""

import pytest

from repro.runner.cli import main


class TestSwitchCli:
    def test_list_shows_registered_scenarios(self, capsys):
        assert main(["switch", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("uniform", "hotspot-egress", "incast", "mixed-scheme"):
            assert name in out

    def test_missing_name_errors(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["switch"])
        assert excinfo.value.code == 2
        assert "NAME is required" in capsys.readouterr().err

    def test_unknown_name_reports_error(self, capsys):
        assert main(["switch", "no-such-switch"]) == 1
        assert "unknown switch scenario" in capsys.readouterr().err

    def test_run_renders_aggregate_and_per_port_tables(self, capsys):
        assert main(["switch", "uniform", "--slots", "200"]) == 0
        out = capsys.readouterr().out
        assert "Switch uniform (8 ports, array engine)" in out
        assert "Per-port closed-loop statistics" in out
        assert "zero miss" in out

    def test_ports_and_jobs_flags(self, capsys):
        assert main(["switch", "hotspot-egress", "--ports", "4",
                     "--slots", "200", "--jobs", "2"]) == 0
        assert "(4 ports" in capsys.readouterr().out

    def test_invalid_ports_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["switch", "uniform", "--ports", "0"])

    def test_engine_flag(self, capsys):
        assert main(["switch", "uniform", "--slots", "150",
                     "--engine", "batched"]) == 0
        assert "batched engine" in capsys.readouterr().out

    def test_fabric_override(self, capsys):
        assert main(["switch", "uniform", "--slots", "150",
                     "--fabric", "priority"]) == 0
        assert "Switch uniform" in capsys.readouterr().out

    def test_output_file(self, tmp_path, capsys):
        path = tmp_path / "switch.txt"
        assert main(["switch", "uniform", "--slots", "150",
                     "-o", str(path)]) == 0
        assert "Per-port closed-loop statistics" in path.read_text()

    def test_identical_report_across_jobs_values(self, capsys):
        """The acceptance criterion, at CLI level: the rendered report is
        byte-identical whichever worker count sharded the ports."""
        assert main(["switch", "hotspot-egress", "--slots", "300",
                     "--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(["switch", "hotspot-egress", "--slots", "300",
                     "--jobs", "4"]) == 0
        assert capsys.readouterr().out == serial


class TestSwitchSuiteExperiment:
    def test_dry_run_lists_one_job_per_scenario(self, capsys):
        assert main(["switch-suite", "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "switch-suite:" in out
        assert "run_switch_spec" in out

    def test_help_carries_runner_flags(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["switch-suite", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "--jobs" in out
