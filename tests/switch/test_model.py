"""Acceptance tests of the two-stage switch model: determinism across
worker counts, exact conservation through the fabric, and the merged report."""

import pytest

from repro.runner.cache import ResultCache
from repro.runner.sweep import SweepRunner
from repro.sim.stats import LatencyStats
from repro.switch import (
    SwitchModel,
    SwitchScenario,
    get_switch_scenario,
    run_fabric,
    run_switch_spec,
    switch_scenario_names,
)
from repro.switch.model import port_scenarios
from repro.workloads.scenario import Scenario, ScenarioResult


def _small(name: str, **overrides) -> SwitchScenario:
    return get_switch_scenario(name).with_overrides(num_slots=400, **overrides)


class TestFabricStage:
    def test_conservation_offered_equals_transferred_after_flush(self):
        traces, stats = run_fabric(_small("uniform"))
        assert stats.offered_cells == stats.transferred_cells
        assert stats.offered_cells == sum(stats.per_egress_cells)

    def test_traces_share_one_length_and_respect_crossbar(self):
        """Each egress accepts at most one cell per slot — the trace *is*
        the single-linecard arrival model."""
        traces, stats = run_fabric(_small("hotspot-egress"))
        for trace in traces:
            assert len(trace) == stats.total_slots
            assert all(src is None or 0 <= src < 8 for src in trace)

    def test_fabric_stage_is_deterministic(self):
        scenario = _small("incast")
        first_traces, first_stats = run_fabric(scenario)
        second_traces, second_stats = run_fabric(scenario)
        assert first_traces == second_traces
        assert first_stats == second_stats

    def test_permutation_traffic_sees_zero_fabric_wait(self):
        """The contention-free calibration pattern: nothing ever queues."""
        traces, stats = run_fabric(_small("permutation"))
        assert stats.flush_slots == 0
        assert stats.wait_max == 0
        assert stats.peak_voq_backlog <= 1

    def test_seed_changes_the_traffic(self):
        import dataclasses

        scenario = _small("uniform")
        reseeded = dataclasses.replace(scenario, seed=scenario.seed + 1)
        assert run_fabric(scenario)[0] != run_fabric(reseeded)[0]

    @pytest.mark.parametrize("bad_match", [
        [(0, 0), (0, 1)],   # same ingress twice
        [(0, 0), (1, 0)],   # same egress twice
    ])
    def test_misbehaving_custom_arbiter_is_caught(self, monkeypatch,
                                                  bad_match):
        """The crossbar invariant (≤1 per ingress AND ≤1 per egress) is
        enforced on whatever a custom FABRIC_TYPES entry returns."""
        from repro.errors import ConfigurationError
        from repro.switch.fabric import FABRIC_TYPES, FabricArbiter

        class BrokenArbiter(FabricArbiter):
            def match(self, slot, requests):
                if all(len(requests[i]) >= 1 for i, _ in bad_match):
                    wanted = [(i, e) for i, e in bad_match
                              if e in requests[i]]
                    if len(wanted) == len(bad_match):
                        return bad_match
                return []

        monkeypatch.setitem(FABRIC_TYPES, "broken", BrokenArbiter)
        import dataclasses

        scenario = dataclasses.replace(
            _small("uniform"), fabric={"type": "broken", "params": {}})
        with pytest.raises(ConfigurationError, match="twice in slot"):
            run_fabric(scenario)


class TestPortScenarios:
    def test_ports_are_ordinary_scenarios(self):
        scenario = _small("uniform")
        traces, _stats = run_fabric(scenario)
        ports = port_scenarios(scenario, traces)
        assert len(ports) == scenario.num_ports
        for port in ports:
            assert isinstance(port, Scenario)
            assert port.arrivals["type"] == "trace"
            assert port.num_slots == len(traces[0])

    def test_port_queue_mapping_folds_ingress_index(self):
        """With fewer queues than ports, sources fold modulo the queue
        count instead of overrunning the buffer."""
        scenario = _small("uniform")
        template = dict(scenario.ports[0])
        template["buffer"] = {"granularity": 4, "num_queues": 4}
        import dataclasses

        narrow = dataclasses.replace(scenario, ports=(template,))
        traces, _stats = run_fabric(narrow)
        ports = port_scenarios(narrow, traces)
        for port, trace in zip(ports, traces):
            pattern = port.arrivals["params"]["pattern"]
            assert all(q is None or 0 <= q < 4 for q in pattern)
            assert pattern == [None if s is None else s % 4 for s in trace]

    def test_mixed_scheme_templates_cycle(self):
        scenario = _small("mixed-scheme")
        traces, _stats = run_fabric(scenario)
        schemes = [p.scheme for p in port_scenarios(scenario, traces)]
        assert schemes == ["rads", "cfds"] * 4

    def test_per_port_seeds_differ(self):
        scenario = _small("uniform")
        traces, _stats = run_fabric(scenario)
        seeds = {p.seed for p in port_scenarios(scenario, traces)}
        assert len(seeds) == scenario.num_ports


class TestSwitchReport:
    @pytest.fixture(scope="class")
    def report(self):
        return SwitchModel(_small("uniform")).run(jobs=1)

    def test_aggregates_are_sums_over_ports(self, report):
        assert report.arrivals == sum(p.arrivals for p in report.ports)
        assert report.departures == sum(p.departures for p in report.ports)
        assert report.drops == sum(p.drops for p in report.ports)
        assert report.arrivals == report.fabric.transferred_cells

    def test_merged_latency_is_exact_histogram_merge(self, report):
        merged = report.merged_latency()
        expected = LatencyStats()
        for port in report.ports:
            for delay, count in port.latency_histogram:
                expected.record_delay(delay, count)
        assert merged == expected
        assert merged.count == report.departures

    def test_summary_is_flat_and_consistent(self, report):
        summary = report.summary()
        assert summary["ports"] == 8
        assert summary["arrivals"] == report.arrivals
        assert summary["zero_miss"] is True
        assert summary["latency_p50"] <= summary["latency_p95"] \
            <= summary["latency_p99"] <= summary["latency_max"]

    def test_port_results_are_scenario_results(self, report):
        assert all(isinstance(p, ScenarioResult) for p in report.ports)


class TestDeterminism:
    @pytest.mark.parametrize("name", switch_scenario_names())
    def test_every_registered_scenario_runs_and_conserves(self, name):
        report = SwitchModel(_small(name)).run(jobs=1)
        assert report.arrivals == report.fabric.transferred_cells
        assert report.fabric.offered_cells == report.fabric.transferred_cells
        assert report.drops == 0
        assert report.zero_miss
        # drain() only flushes requested cells, so a handful may legally
        # remain buffered at the very end of each port's run.
        assert 0 <= report.arrivals - report.departures <= 2 * report.num_ports

    def test_report_identical_across_jobs_counts(self):
        scenario = _small("mixed-scheme")
        serial = SwitchModel(scenario).run(jobs=1)
        sharded = SwitchModel(scenario).run(jobs=3)
        assert serial == sharded

    def test_report_identical_across_engines(self):
        scenario = _small("uniform")
        reports = {engine: SwitchModel(scenario).run(engine=engine)
                   for engine in ("reference", "batched", "array")}
        assert (reports["reference"].ports == reports["batched"].ports
                == reports["array"].ports)
        assert (reports["reference"].fabric == reports["batched"].fabric
                == reports["array"].fabric)

    def test_run_switch_spec_round_trips_through_cache(self, tmp_path):
        """The switch-suite job function: a cached re-run reconstructs a
        report that compares equal to the fresh one."""
        scenario = _small("incast")
        cache = ResultCache(root=tmp_path)
        runner = SweepRunner(jobs=1, cache=cache)
        from repro.runner.jobs import Job

        job = Job(func="repro.switch.model:run_switch_spec",
                  kwargs={"spec": scenario.to_spec(), "jobs": 1})
        fresh = runner.run_one(job)
        again = runner.run_one(job)
        assert cache.hits == 1
        assert fresh == again
        assert fresh.summary() == again.summary()

    def test_num_ports_override_rescales(self):
        report = run_switch_spec(_small("uniform").to_spec(), num_ports=4,
                                 num_slots=300)
        assert report.num_ports == 4
        assert len(report.ports) == 4
        # queue counts follow the port count by default
        assert all(p.arrivals >= 0 for p in report.ports)
