"""Golden-report regression fixtures for the switch scenarios.

The single-port scenarios have had golden ``summary()`` snapshots since
PR 4 (``tests/workloads/test_golden.py``); these extend the same net to the
switch layer: every registered switch scenario has a committed JSON snapshot
of its ``SwitchReport.summary()`` under ``tests/fixtures/golden/switch/``.
The cross-engine and jobs-vs-stream tests prove the execution paths agree
*with each other*; the fixtures prove they agree *with the past*.

After an intentional behaviour change, regenerate with::

    python -m pytest tests/switch/test_golden.py --update-golden

and review the fixture diff like any other code change.
"""

import json
from pathlib import Path

import pytest

from repro.switch.model import SwitchModel
from repro.switch.registry import get_switch_scenario, switch_scenario_names

#: Kept in a subdirectory: the single-port golden test asserts every
#: ``golden/*.json`` stem is a registered *scenario*, so switch fixtures
#: must not share that namespace.
GOLDEN_DIR = (Path(__file__).resolve().parent.parent / "fixtures" / "golden"
              / "switch")


def _canonical(summary):
    """The summary as it round-trips through JSON (tuples become lists,
    float repr normalises) — what a committed fixture can actually store."""
    return json.loads(json.dumps(summary, sort_keys=True))


@pytest.mark.parametrize("name", switch_scenario_names())
def test_switch_summary_matches_golden_fixture(name, request):
    scenario = get_switch_scenario(name)
    summary = _canonical(SwitchModel(scenario).run().summary())
    path = GOLDEN_DIR / f"{name}.json"
    if request.config.getoption("--update-golden"):
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
        pytest.skip(f"golden fixture rewritten: {path}")
    assert path.exists(), (
        f"no golden fixture for switch scenario {name!r}; run "
        f"pytest tests/switch/test_golden.py --update-golden and commit "
        f"{path}")
    stored = json.loads(path.read_text(encoding="utf-8"))
    assert summary == stored, (
        f"switch scenario {name!r} drifted from its golden fixture {path}; "
        f"if the change is intentional, regenerate with --update-golden and "
        f"review the diff")


def test_no_orphaned_switch_golden_fixtures():
    fixtures = {p.stem for p in GOLDEN_DIR.glob("*.json")}
    names = set(switch_scenario_names())
    assert fixtures <= names, (
        f"orphaned switch golden fixtures: {sorted(fixtures - names)}")


def test_switch_golden_fixtures_are_path_independent():
    """The fixture pins behaviour, not an execution path: any engine and
    the streamed fabric path must match it (spot-checked on one scenario)."""
    scenario = get_switch_scenario("uniform")
    stored = json.loads(
        (GOLDEN_DIR / "uniform.json").read_text(encoding="utf-8"))
    model = SwitchModel(scenario)
    assert _canonical(model.run(engine="reference").summary()) == stored
    assert _canonical(
        SwitchModel(scenario).run_stream(engine="array").summary()) == stored
