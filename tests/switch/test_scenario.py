"""Tests of the SwitchScenario spec, its registry and the ingress traffic."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.switch import (
    IncastTraffic,
    PermutationTraffic,
    SwitchScenario,
    all_switch_scenarios,
    build_ingress_traffic,
    get_switch_scenario,
    register_switch_scenario,
    switch_scenario_names,
)


def _minimal(**overrides) -> SwitchScenario:
    fields = dict(
        name="test-switch",
        description="a test switch",
        num_ports=4,
        traffic={"type": "bernoulli", "params": {"load": 0.5}},
        fabric={"type": "islip", "params": {}},
        ports=({"scheme": "rads", "buffer": {"granularity": 4},
                "arbiter": {"type": "oldest_cell", "params": {}}},),
        num_slots=100,
        seed=5,
        tags=("test",),
    )
    fields.update(overrides)
    return SwitchScenario(**fields)


class TestValidation:
    def test_rejects_non_positive_ports(self):
        with pytest.raises(ConfigurationError):
            _minimal(num_ports=0)

    def test_rejects_negative_slots(self):
        with pytest.raises(ConfigurationError):
            _minimal(num_slots=-1)

    def test_rejects_empty_port_templates(self):
        with pytest.raises(ConfigurationError):
            _minimal(ports=())

    def test_rejects_unknown_scheme(self):
        with pytest.raises(ConfigurationError):
            _minimal(ports=({"scheme": "sram-only"},))

    def test_rejects_unknown_traffic_type(self):
        with pytest.raises(ConfigurationError):
            _minimal(traffic={"type": "fractal", "params": {}})

    def test_rejects_unknown_fabric_type(self):
        with pytest.raises(ConfigurationError):
            _minimal(fabric={"type": "wavefront", "params": {}})


class TestPortSpecDefaults:
    def test_num_queues_defaults_to_port_count(self):
        spec = _minimal().port_spec(0)
        assert spec["buffer"]["num_queues"] == 4
        assert spec["arbiter"]["params"]["num_queues"] == 4

    def test_pinned_num_queues_respected(self):
        scenario = _minimal(ports=({"scheme": "rads",
                                    "buffer": {"granularity": 4,
                                               "num_queues": 16},
                                    "arbiter": {"type": "oldest_cell",
                                                "params": {}}},))
        spec = scenario.port_spec(0)
        assert spec["buffer"]["num_queues"] == 16
        assert spec["arbiter"]["params"]["num_queues"] == 16

    def test_wrapper_arbiter_inner_gets_queue_count(self):
        scenario = _minimal(ports=({"scheme": "rads",
                                    "buffer": {"granularity": 4},
                                    "arbiter": {"type": "intermittent",
                                                "params": {
                                                    "inner": {
                                                        "type": "oldest_cell",
                                                        "params": {}},
                                                    "on_slots": 5,
                                                    "off_slots": 2}}},))
        arbiter = scenario.port_spec(0)["arbiter"]
        assert "num_queues" not in arbiter["params"]
        assert arbiter["params"]["inner"]["params"]["num_queues"] == 4

    def test_templates_cycle_over_ports(self):
        rads = {"scheme": "rads", "buffer": {"granularity": 4},
                "arbiter": {"type": "oldest_cell", "params": {}}}
        cfds = {"scheme": "cfds",
                "buffer": {"dram_access_slots": 8, "granularity": 2,
                           "num_banks": 32},
                "arbiter": {"type": "longest_queue", "params": {}}}
        scenario = _minimal(ports=(rads, cfds))
        assert [scenario.port_spec(i)["scheme"] for i in range(4)] == \
            ["rads", "cfds", "rads", "cfds"]

    def test_with_overrides_rescales_queue_defaults(self):
        wide = _minimal().with_overrides(num_ports=16)
        assert wide.num_ports == 16
        assert wide.port_spec(0)["buffer"]["num_queues"] == 16

    def test_with_overrides_noop_returns_equivalent(self):
        scenario = _minimal()
        assert scenario.with_overrides() is scenario


class TestSpecRoundTrip:
    def test_to_spec_is_json_serialisable(self):
        spec = _minimal().to_spec()
        assert json.loads(json.dumps(spec)) == spec

    def test_round_trip_preserves_everything(self):
        scenario = _minimal()
        rebuilt = SwitchScenario.from_spec(
            json.loads(json.dumps(scenario.to_spec())))
        assert rebuilt.to_spec() == scenario.to_spec()
        assert rebuilt.num_ports == scenario.num_ports
        assert rebuilt.tags == scenario.tags

    @pytest.mark.parametrize("name", switch_scenario_names())
    def test_every_registered_scenario_round_trips(self, name):
        scenario = get_switch_scenario(name)
        rebuilt = SwitchScenario.from_spec(
            json.loads(json.dumps(scenario.to_spec())))
        assert rebuilt.to_spec() == scenario.to_spec()

    def test_from_spec_missing_key_raises(self):
        spec = _minimal().to_spec()
        del spec["num_ports"]
        with pytest.raises(ConfigurationError):
            SwitchScenario.from_spec(spec)


class TestRegistry:
    def test_suite_covers_the_required_families(self):
        names = switch_scenario_names()
        assert len(names) >= 6
        for required in ("uniform", "hotspot-egress", "incast",
                         "strided-ports", "mixed-scheme", "trace-driven"):
            assert required in names

    def test_all_scenarios_sorted_by_name(self):
        names = [s.name for s in all_switch_scenarios()]
        assert names == sorted(names)

    def test_duplicate_registration_rejected(self):
        scenario = get_switch_scenario("uniform")
        with pytest.raises(ConfigurationError):
            register_switch_scenario(scenario)

    def test_unknown_name_raises_with_known_names(self):
        with pytest.raises(ConfigurationError, match="uniform"):
            get_switch_scenario("no-such-switch")

    def test_tag_filtering(self):
        assert "strided-ports" in switch_scenario_names(tag="adversarial")
        assert "uniform" not in switch_scenario_names(tag="adversarial")


class TestIngressTraffic:
    def test_incast_bursts_are_synchronised_across_ingresses(self):
        sources = [build_ingress_traffic(
            {"type": "incast", "params": {"period": 10, "burst": 3}},
            num_ports=4, ingress=i, seed=100 + i) for i in range(4)]
        for slot in (0, 1, 2, 10, 11, 12):
            assert all(s.next_arrival(slot) == 0 for s in sources)

    def test_incast_background_streams_differ_per_ingress(self):
        a = build_ingress_traffic(
            {"type": "incast", "params": {"period": 8, "burst": 1,
                                          "load": 0.9}},
            num_ports=8, ingress=0, seed=1)
        b = build_ingress_traffic(
            {"type": "incast", "params": {"period": 8, "burst": 1,
                                          "load": 0.9}},
            num_ports=8, ingress=1, seed=2)
        streams = [[s.next_arrival(slot) for slot in range(200)]
                   for s in (a, b)]
        assert streams[0] != streams[1]

    def test_incast_validates_parameters(self):
        with pytest.raises(ValueError):
            IncastTraffic(num_queues=4, victim=4)
        with pytest.raises(ValueError):
            IncastTraffic(num_queues=4, period=4, burst=5)
        with pytest.raises(ValueError):
            IncastTraffic(num_queues=4, load=1.5)

    def test_permutation_targets_shifted_ingress(self):
        source = PermutationTraffic(num_queues=8, ingress=3, shift=2,
                                    load=1.0)
        assert all(source.next_arrival(slot) == 5 for slot in range(10))

    def test_permutation_injected_ingress_index(self):
        spec = {"type": "permutation", "params": {"shift": 1, "load": 1.0}}
        destinations = {build_ingress_traffic(spec, 4, i, seed=0)
                        .next_arrival(0) for i in range(4)}
        assert destinations == {0, 1, 2, 3}

    def test_single_port_arrival_types_usable_as_ingress_traffic(self):
        source = build_ingress_traffic(
            {"type": "zipf", "params": {"exponent": 1.2, "load": 1.0}},
            num_ports=8, ingress=0, seed=3)
        draws = [source.next_arrival(slot) for slot in range(500)]
        assert all(d is None or 0 <= d < 8 for d in draws)

    def test_trace_patterns_fold_to_the_port_count(self):
        """A destination trace captured on a larger switch rescales by
        folding, so trace-driven scenarios honour --ports like the rest."""
        source = build_ingress_traffic(
            {"type": "trace", "params": {"pattern": [6, None, 3, 7]}},
            num_ports=4, ingress=0, seed=0)
        assert [source.next_arrival(s) for s in range(4)] == [2, None, 3, 3]

    def test_trace_driven_scenario_rescales_below_its_trace(self):
        from repro.switch import SwitchModel

        scenario = get_switch_scenario("trace-driven").with_overrides(
            num_ports=4, num_slots=200)
        report = SwitchModel(scenario).run(jobs=1)
        assert report.num_ports == 4
        assert report.zero_miss

    def test_unknown_traffic_type_raises(self):
        with pytest.raises(ConfigurationError, match="incast"):
            build_ingress_traffic({"type": "bogus"}, 4, 0, 0)

    def test_spec_without_type_raises(self):
        with pytest.raises(ConfigurationError):
            build_ingress_traffic({}, 4, 0, 0)
