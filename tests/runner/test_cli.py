"""Smoke tests for the ``python -m repro`` command line."""

import pytest

from repro.runner.cli import ALL, build_parser, main
from repro.runner.experiments import EXPERIMENTS

SUBCOMMANDS = sorted(EXPERIMENTS) + [ALL]


class TestHelp:
    def test_top_level_help_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        assert "EXPERIMENT" in capsys.readouterr().out

    @pytest.mark.parametrize("name", SUBCOMMANDS)
    def test_subcommand_help_exits_zero(self, name, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([name, "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "--jobs" in out
        assert "--no-cache" in out

    def test_no_subcommand_prints_help(self, capsys):
        assert main([]) == 2
        assert "EXPERIMENT" in capsys.readouterr().out

    def test_version_flag(self, capsys):
        import repro
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_unknown_subcommand_errors(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["figure99"])
        assert excinfo.value.code == 2


class TestDryRun:
    @pytest.mark.parametrize("name", sorted(EXPERIMENTS))
    def test_dry_run_lists_jobs_without_computing(self, name, capsys):
        assert main([name, "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert f"{name}:" in out
        assert "jobs" in out

    def test_dry_run_all_covers_every_experiment(self, capsys):
        assert main([ALL, "--dry-run"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert f"{name}:" in out


class TestExecution:
    def test_intro_dram_report(self, tmp_path, capsys):
        code = main(["intro-dram", "--cache-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "guaranteed" in out
        assert "[runner]" in out

    def test_table2_output_file(self, tmp_path):
        out_file = tmp_path / "table2.txt"
        code = main(["table2", "--no-cache", "--output", str(out_file)])
        assert code == 0
        text = out_file.read_text(encoding="utf-8")
        assert "Table 2" in text
        assert "OC-3072" in text

    def test_second_invocation_served_from_cache(self, tmp_path, capsys):
        args = ["figure8", "--jobs", "2", "--cache-dir", str(tmp_path)]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "0 cache hits" in first
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "0 jobs executed" in second
        # The report itself must be identical, only the footer may differ.
        def strip(text):
            return [line for line in text.splitlines()
                    if not line.startswith("[runner]")]
        assert strip(first) == strip(second)

    def test_no_cache_recomputes(self, tmp_path, capsys):
        args = ["scaling", "--no-cache", "--cache-dir", str(tmp_path)]
        assert main(args) == 0
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "0 cache hits" in out
        assert not any(tmp_path.iterdir())  # --no-cache writes nothing

    def test_parallel_report_matches_serial(self, tmp_path, capsys):
        serial_args = ["figure11", "--no-cache"]
        assert main(serial_args) == 0
        serial = capsys.readouterr().out
        assert main(serial_args + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        def strip(text):
            return [line for line in text.splitlines()
                    if not line.startswith("[runner]")]
        assert strip(serial) == strip(parallel)


class TestParser:
    def test_every_experiment_has_a_subparser(self):
        parser = build_parser()
        for name in EXPERIMENTS:
            args = parser.parse_args([name])
            assert args.experiment == name
            assert args.jobs == 1
            assert not args.no_cache

    def test_jobs_flag_parses(self):
        args = build_parser().parse_args(["figure8", "-j", "4"])
        assert args.jobs == 4


class TestScenarioCommand:
    def test_list_enumerates_registered_scenarios(self, capsys):
        from repro.workloads import scenario_names
        assert main(["scenario", "--list"]) == 0
        out = capsys.readouterr().out
        names = scenario_names()
        assert len(names) >= 8
        for name in names:
            assert name in out

    def test_run_one_scenario(self, capsys):
        assert main(["scenario", "uniform-bernoulli"]) == 0
        out = capsys.readouterr().out
        assert "uniform-bernoulli" in out
        assert "latency p99" in out
        assert "zero miss" in out

    def test_slots_override_and_legacy_loop_agree(self, capsys):
        assert main(["scenario", "uniform-bernoulli", "--slots", "600"]) == 0
        fast = capsys.readouterr().out
        assert main(["scenario", "uniform-bernoulli", "--slots", "600",
                     "--legacy-loop"]) == 0
        legacy = capsys.readouterr().out
        assert fast == legacy

    def test_engine_flag_agrees_across_engines(self, capsys):
        reports = {}
        for engine in ("reference", "batched", "array"):
            assert main(["scenario", "uniform-bernoulli", "--slots", "600",
                         "--engine", engine]) == 0
            reports[engine] = capsys.readouterr().out
        assert reports["reference"] == reports["batched"] == reports["array"]

    def test_legacy_loop_conflicts_with_other_engines(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["scenario", "uniform-bernoulli", "--legacy-loop",
                  "--engine", "array"])
        assert excinfo.value.code == 2
        assert "conflicts" in capsys.readouterr().err
        # --legacy-loop with the matching engine is redundant but consistent.
        assert main(["scenario", "uniform-bernoulli", "--slots", "200",
                     "--legacy-loop", "--engine", "reference"]) == 0

    def test_engine_flag_on_replay(self, tmp_path, capsys):
        trace_file = str(tmp_path / "capture.rtrc")
        assert main(["scenario", "bursty-trains", "--record", trace_file]) == 0
        capsys.readouterr()
        assert main(["scenario", "bursty-trains", "--replay", trace_file,
                     "--engine", "array"]) == 0
        array = capsys.readouterr().out
        assert main(["scenario", "bursty-trains", "--replay", trace_file]) == 0
        batched = capsys.readouterr().out
        assert array == batched

    def test_record_then_replay_round_trip(self, tmp_path, capsys):
        trace_file = str(tmp_path / "capture.rtrc")
        assert main(["scenario", "bursty-trains", "--record", trace_file]) == 0
        recorded = capsys.readouterr().out
        assert "trace saved" in recorded
        assert main(["scenario", "bursty-trains", "--replay", trace_file]) == 0
        replayed = capsys.readouterr().out
        # Identical statistics table (modulo the trace-saved footer).
        assert replayed.strip() in recorded

    def test_unknown_scenario_errors(self, capsys):
        assert main(["scenario", "no-such-scenario"]) == 1
        assert "unknown scenario" in capsys.readouterr().err

    def test_missing_name_errors(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["scenario"])
        assert excinfo.value.code == 2

    def test_scenarios_experiment_is_registered(self, tmp_path, capsys):
        assert main(["scenarios", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Workload scenarios" in out
        assert "p99" in out

    def test_replay_into_smaller_buffer_errors_cleanly(self, tmp_path, capsys):
        from repro.workloads import Scenario, register_scenario
        from repro.workloads.registry import _REGISTRY
        trace_file = str(tmp_path / "wide.rtrc")
        assert main(["scenario", "bursty-trains", "--record", trace_file]) == 0
        capsys.readouterr()
        register_scenario(Scenario(
            name="test-cli-tiny", description="4-queue probe", scheme="rads",
            buffer={"num_queues": 4, "granularity": 3},
            arrivals={"type": "bernoulli", "params": {"num_queues": 4}},
            arbiter=None, num_slots=100))
        try:
            assert main(["scenario", "test-cli-tiny", "--replay", trace_file]) == 1
            assert "has only 4 queues" in capsys.readouterr().err
        finally:
            del _REGISTRY["test-cli-tiny"]

    def test_replay_missing_file_errors_cleanly(self, capsys):
        assert main(["scenario", "bursty-trains", "--replay",
                     "/nonexistent/trace.rtrc"]) == 1
        assert "cannot access trace file" in capsys.readouterr().err


class TestExitCodePins:
    """Every CLI failure path must exit non-zero with a one-line
    ``error: ...`` message — fuzz-found failure modes get pinned here so
    they cannot regress into tracebacks or silent exit-0."""

    def test_negative_slots_exit_one_with_one_line_error(self, capsys):
        assert main(["scenario", "uniform-bernoulli", "--slots", "-5"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert err.count("\n") == 1
        assert "Traceback" not in err

    def test_scenario_list_exits_zero(self):
        assert main(["scenario", "--list"]) == 0

    def test_missing_spec_file_exits_one(self, capsys):
        assert main(["scenario", "--from-spec", "/nonexistent.yaml"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: cannot read spec")
        assert err.count("\n") == 1

    def test_invalid_spec_exits_one_naming_the_key(self, tmp_path, capsys):
        bad = tmp_path / "bad.yaml"
        bad.write_text("kind: scenario\nname: x\nspec: {}\ngrid: {seed: 1}\n",
                       encoding="utf-8")
        assert main(["scenario", "--from-spec", str(bad)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert "grid['seed']" in err
        assert err.count("\n") == 1

    def test_kind_mismatch_exits_one(self, capsys):
        assert main(["scenario", "--from-spec",
                     "examples/switch_sweep.yaml"]) == 1
        err = capsys.readouterr().err
        assert "kind 'switch'" in err
        assert err.count("\n") == 1

    def test_from_spec_plus_name_is_a_usage_error(self):
        with pytest.raises(SystemExit) as exc:
            main(["scenario", "uniform-bernoulli",
                  "--from-spec", "examples/scenario_sweep.yaml"])
        assert exc.value.code == 2

    def test_keyboard_interrupt_exits_130_no_traceback(self, capsys,
                                                       monkeypatch):
        # Ctrl-C must look like an interrupted process: one line on stderr,
        # exit code 128+SIGINT, never a traceback.
        from repro.workloads import registry

        def interrupted(name):
            raise KeyboardInterrupt

        monkeypatch.setattr(registry, "get_scenario", interrupted)
        assert main(["scenario", "uniform-bernoulli"]) == 130
        err = capsys.readouterr().err
        assert err == "interrupted\n"
        assert "Traceback" not in err


class TestFromSpec:
    def test_scenario_dry_run_lists_the_grid(self, capsys):
        assert main(["scenario", "--from-spec",
                     "examples/scenario_sweep.yaml", "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "load-mma-sweep: 24 jobs" in out
        assert "load-mma-sweep-g000" in out
        assert "load-mma-sweep-g023" in out

    def test_switch_dry_run_lists_the_grid(self, capsys):
        assert main(["switch", "--from-spec",
                     "examples/switch_sweep.yaml", "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "fabric-ports-sweep: 9 jobs" in out

    def test_small_spec_runs_to_a_table(self, tmp_path, capsys):
        spec = tmp_path / "small.yaml"
        spec.write_text("""\
kind: scenario
name: cli-smoke
spec:
  scheme: rads
  buffer: {num_queues: 4, granularity: 2}
  arrivals: {type: bernoulli, params: {num_queues: 4, load: 0.8}}
  arbiter: {type: oldest_cell, params: {num_queues: 4}}
  num_slots: 400
  seed: 2
grid:
  seed: [2, 3]
""", encoding="utf-8")
        assert main(["scenario", "--from-spec", str(spec)]) == 0
        out = capsys.readouterr().out
        assert "cli-smoke-g000" in out and "cli-smoke-g001" in out
        assert "p99" in out


class TestFuzzCommand:
    def test_quick_fuzz_exits_zero(self, capsys):
        assert main(["fuzz", "--seeds", "2", "--quiet"]) == 0
        assert "2 cases" in capsys.readouterr().out

    def test_replay_of_a_dumped_artifact_exits_zero(self, tmp_path, capsys):
        from repro.workloads.fuzz import dump_artifact, make_case
        path = dump_artifact(make_case(9, 0), divergences=[],
                             artifact_dir=str(tmp_path), stream=False)
        assert main(["fuzz", "--replay", path, "--quiet"]) == 0

    def test_replay_of_garbage_exits_one(self, tmp_path, capsys):
        bad = tmp_path / "junk.json"
        bad.write_text("{}", encoding="utf-8")
        assert main(["fuzz", "--replay", str(bad), "--quiet"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert err.count("\n") == 1


class TestObservabilityFlags:
    def test_metrics_flag_prints_the_registry_to_stderr(self, capsys):
        assert main(["scenario", "uniform-bernoulli", "--slots", "400",
                     "--engine", "array", "--metrics"]) == 0
        captured = capsys.readouterr()
        assert "== run metrics ==" in captured.err
        assert "engine.array.runs = 1" in captured.err
        assert "engine.slots_simulated = 400" in captured.err
        # The report itself stays on stdout, metrics-free.
        assert "metrics" not in captured.out

    def test_trace_out_writes_and_summarize_reads(self, tmp_path, capsys):
        trace = tmp_path / "run.ndjson"
        assert main(["scenario", "uniform-bernoulli", "--slots", "400",
                     "--trace-out", str(trace)]) == 0
        assert f"trace written to {trace}" in capsys.readouterr().err
        assert main(["trace", "summarize", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "run_end: 1" in out
        assert "trace_close: 1" in out

    def test_trace_summarize_json_mode(self, tmp_path, capsys):
        import json
        trace = tmp_path / "run.ndjson"
        assert main(["scenario", "uniform-bernoulli", "--slots", "400",
                     "--trace-out", str(trace)]) == 0
        capsys.readouterr()
        assert main(["trace", "summarize", str(trace), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["by_type"]["run_start"] == 1

    def test_trace_summarize_missing_file_exits_one(self, tmp_path, capsys):
        assert main(["trace", "summarize",
                     str(tmp_path / "nope.ndjson")]) == 1
        assert capsys.readouterr().err.startswith("error: cannot read")

    def test_trace_out_unwritable_path_exits_one(self, tmp_path, capsys):
        bad = tmp_path / "no-such-dir" / "t.ndjson"
        assert main(["scenario", "uniform-bernoulli", "--slots", "400",
                     "--trace-out", str(bad)]) == 1
        assert "cannot open trace file" in capsys.readouterr().err

    def test_progress_prints_heartbeats_to_stderr(self, capsys):
        assert main(["scenario", "uniform-bernoulli", "--slots", "2000",
                     "--chunk-slots", "500", "--progress"]) == 0
        err = capsys.readouterr().err
        assert "[stream] slot 500/2000" in err
        assert "[stream] slot 2000/2000 (100.0%)" in err

    def test_progress_every_must_be_positive(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["scenario", "uniform-bernoulli", "--progress",
                  "--progress-every", "0"])
        assert excinfo.value.code == 2


class TestBenchCompareCommand:
    def make_snapshot(self, path, speedup, overhead=1.0):
        import json
        document = {
            "suite": "repro-bench", "schema": 1, "quick": True,
            "repeats": 1,
            "benchmarks": [
                {"name": "wide-128/array", "median_s": 0.01,
                 "samples_s": [0.01],
                 "metrics": {"slots": 1500, "kslots_per_s": 150.0}}],
            "derived": {"speedup": speedup, "x-overhead": overhead},
            "derived_directions": {"speedup": "higher_better",
                                   "x-overhead": "lower_better"},
        }
        path.write_text(json.dumps(document), encoding="utf-8")
        return str(path)

    def test_identical_snapshots_pass_the_gate(self, tmp_path, capsys):
        base = self.make_snapshot(tmp_path / "base.json", 5.0)
        assert main(["bench", "--compare", base, "--against", base,
                     "--fail-on-regression", "10"]) == 0
        out = capsys.readouterr().out
        assert "bench compare" in out
        assert "OK: no gated ratio regressed more than 10%" in out

    def test_regression_fails_the_gate_with_exit_one(self, tmp_path,
                                                     capsys):
        base = self.make_snapshot(tmp_path / "base.json", 5.0)
        cur = self.make_snapshot(tmp_path / "cur.json", 3.0)
        assert main(["bench", "--compare", base, "--against", cur,
                     "--fail-on-regression", "10"]) == 1
        out = capsys.readouterr().out
        assert "<< REGRESSION" in out
        assert "FAIL: 1 ratio(s) regressed more than 10%" in out

    def test_compare_without_gate_reports_but_exits_zero(self, tmp_path,
                                                         capsys):
        base = self.make_snapshot(tmp_path / "base.json", 5.0)
        cur = self.make_snapshot(tmp_path / "cur.json", 3.0)
        assert main(["bench", "--compare", base, "--against", cur]) == 0
        assert "derived ratios" in capsys.readouterr().out

    def test_ratios_restricts_the_gate(self, tmp_path, capsys):
        base = self.make_snapshot(tmp_path / "base.json", 5.0, overhead=1.0)
        cur = self.make_snapshot(tmp_path / "cur.json", 3.0, overhead=1.0)
        # Only the (unchanged) overhead ratio is gated: the speedup
        # regression is reported but does not fail the run.
        assert main(["bench", "--compare", base, "--against", cur,
                     "--fail-on-regression", "10",
                     "--ratios", "x-overhead"]) == 0
        assert "(not gated)" in capsys.readouterr().out

    def test_unknown_ratio_name_exits_one(self, tmp_path, capsys):
        base = self.make_snapshot(tmp_path / "base.json", 5.0)
        assert main(["bench", "--compare", base, "--against", base,
                     "--fail-on-regression", "10",
                     "--ratios", "no-such-ratio"]) == 1
        assert "not in the compare report" in capsys.readouterr().err

    def test_compare_json_writes_the_report(self, tmp_path, capsys):
        import json
        base = self.make_snapshot(tmp_path / "base.json", 5.0)
        out_path = tmp_path / "cmp.json"
        assert main(["bench", "--compare", base, "--against", base,
                     "--compare-json", str(out_path)]) == 0
        report = json.loads(out_path.read_text(encoding="utf-8"))
        assert {row["name"] for row in report["ratios"]} == \
            {"speedup", "x-overhead"}

    def test_against_requires_compare(self, tmp_path):
        base = self.make_snapshot(tmp_path / "base.json", 5.0)
        with pytest.raises(SystemExit) as excinfo:
            main(["bench", "--against", base])
        assert excinfo.value.code == 2

    def test_gate_requires_compare(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["bench", "--fail-on-regression", "10"])
        assert excinfo.value.code == 2

    def test_missing_baseline_exits_one(self, tmp_path, capsys):
        assert main(["bench", "--compare",
                     str(tmp_path / "nope.json")]) == 1
        assert "cannot read bench snapshot" in capsys.readouterr().err
