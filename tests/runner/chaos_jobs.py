"""Module-level job functions for the chaos test suite.

Sweep jobs name their function by import path (``"module:attr"``), so these
live in an importable module rather than inline in the tests — worker
processes resolve them independently.
"""

from __future__ import annotations

import os
import time

from repro.errors import ReproError
from repro.faults import TransientJobError


def echo(value):
    """The identity job — the simplest deterministic payload."""
    return value


def square(x):
    return x * x


def slow_echo(value, seconds=5.0):
    """Sleeps long enough to trip any sub-second per-job timeout."""
    time.sleep(seconds)
    return value


def always_fails(tag="poison"):
    """A permanent poison job: fails identically on every attempt."""
    raise ReproError(f"poison job {tag} is permanently broken")


def kill_worker():
    """Dies the way an OOM-killed worker does: no exception, no cleanup."""
    os._exit(137)


def transient_until_marker(marker_path, value):
    """Fails transiently until ``marker_path`` exists, creating it on the
    first attempt — so attempt 0 fails and attempt 1 succeeds."""
    if not os.path.exists(marker_path):
        with open(marker_path, "w", encoding="utf-8") as handle:
            handle.write("attempted\n")
        raise TransientJobError("flaky dependency not warmed up yet")
    return value


def crash_until_marker(marker_path, value):
    """Kills its worker until ``marker_path`` exists — a crash that stops
    reproducing once the environment changes (e.g. memory freed)."""
    if not os.path.exists(marker_path):
        with open(marker_path, "w", encoding="utf-8") as handle:
            handle.write("attempted\n")
        os._exit(137)
    return value
