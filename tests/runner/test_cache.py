"""Tests for the on-disk result cache."""

import json

import pytest


from repro.runner.cache import MISS, ResultCache
from repro.runner.jobs import Job

JOB = Job(func="repro.analysis.figure8:figure8_point",
          kwargs={"oc_name": "OC-768", "lookahead": 9})


class TestHitAndMiss:
    def test_empty_cache_misses(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        assert cache.get(JOB) is MISS
        assert cache.misses == 1

    def test_put_then_get(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        cache.put(JOB, {"value": 1.5})
        assert cache.get(JOB) == {"value": 1.5}
        assert cache.hits == 1

    def test_persists_across_instances(self, tmp_path):
        ResultCache(root=tmp_path).put(JOB, [1, 2, 3])
        assert ResultCache(root=tmp_path).get(JOB) == [1, 2, 3]

    def test_cached_none_is_not_a_miss(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        cache.put(JOB, None)
        assert cache.get(JOB) is None


class TestInvalidation:
    def test_different_kwargs_different_entry(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        other = Job(func=JOB.func, kwargs={"oc_name": "OC-768", "lookahead": 10})
        cache.put(JOB, "a")
        assert cache.get(other) is MISS
        assert cache.key(JOB) != cache.key(other)

    def test_different_function_different_entry(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        other = Job(func="repro.analysis.table2:table2_row", kwargs=JOB.kwargs)
        cache.put(JOB, "a")
        assert cache.get(other) is MISS

    def test_version_change_invalidates(self, tmp_path):
        ResultCache(root=tmp_path, version="1.0.0").put(JOB, "old")
        assert ResultCache(root=tmp_path, version="1.1.0").get(JOB) is MISS

    def test_version_directories_are_separate(self, tmp_path):
        cache = ResultCache(root=tmp_path, version="9.9.9")
        cache.put(JOB, "x")
        assert (tmp_path / "9.9.9").is_dir()

    def test_corrupted_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        cache.put(JOB, "good")
        cache.path(JOB).write_text("{not json", encoding="utf-8")
        assert cache.get(JOB) is MISS

    def test_key_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        cache.put(JOB, "good")
        entry = json.loads(cache.path(JOB).read_text(encoding="utf-8"))
        entry["key"] = "0" * 64
        cache.path(JOB).write_text(json.dumps(entry), encoding="utf-8")
        assert cache.get(JOB) is MISS

    def test_undeserialisable_entry_is_a_miss(self, tmp_path):
        # An entry referencing a class that no longer exists (e.g. a result
        # dataclass was renamed without a version bump) must self-heal by
        # recomputing, not poison every subsequent run.
        cache = ResultCache(root=tmp_path)
        cache.put(JOB, "good")
        entry = json.loads(cache.path(JOB).read_text(encoding="utf-8"))
        entry["result"] = {"__dataclass__": "repro.analysis.figure8:Gone",
                           "fields": {}}
        cache.path(JOB).write_text(json.dumps(entry), encoding="utf-8")
        assert cache.get(JOB) is MISS

    def test_entry_missing_result_key_is_a_miss(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        cache.put(JOB, "good")
        entry = json.loads(cache.path(JOB).read_text(encoding="utf-8"))
        del entry["result"]
        cache.path(JOB).write_text(json.dumps(entry), encoding="utf-8")
        assert cache.get(JOB) is MISS


class TestMaintenance:
    def test_len_counts_entries(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        assert len(cache) == 0
        cache.put(JOB, 1)
        assert len(cache) == 1

    def test_clear_removes_current_version_only(self, tmp_path):
        current = ResultCache(root=tmp_path, version="2.0.0")
        old = ResultCache(root=tmp_path, version="1.0.0")
        current.put(JOB, "new")
        old.put(JOB, "old")
        assert current.clear() == 1
        assert len(current) == 0
        assert old.get(JOB) == "old"

    def test_key_is_stable_across_processes(self, tmp_path):
        # The key must not depend on dict ordering or hash randomisation.
        a = Job(func="m:f", kwargs={"x": 1, "y": 2})
        b = Job(func="m:f", kwargs={"y": 2, "x": 1})
        cache = ResultCache(root=tmp_path, version="1.0.0")
        assert cache.key(a) == cache.key(b)
        assert len(cache.key(a)) == 64


class TestTempFileHygiene:
    """``put`` leaked ``*.json.tmp.<pid>`` files whenever a worker died
    between writing the temp file and the atomic rename — and nothing ever
    cleaned them up.  The fixes: ``put`` unlinks its temp file on any write
    failure, ``clear()`` removes stale temp files alongside the entries,
    and ``sweep_stale_tmp()`` (run at SweepRunner startup) reclaims temp
    files whose writer process is gone."""

    def _dead_pid(self):
        import subprocess

        proc = subprocess.Popen(["true"])
        proc.wait()
        return proc.pid

    def test_put_leaves_no_temp_file(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        cache.put(JOB, {"value": 1})
        assert not list(tmp_path.rglob("*.tmp.*"))

    def test_failed_put_removes_its_temp_file(self, tmp_path, monkeypatch):
        """A failure after the temp file is created (a full disk, an
        interrupt mid-dump) must not leave it behind."""
        import repro.runner.cache as cache_module

        cache = ResultCache(root=tmp_path)

        def exploding_dump(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(cache_module.json, "dump", exploding_dump)
        with pytest.raises(OSError, match="disk full"):
            cache.put(JOB, {"value": 1})
        assert not list(tmp_path.rglob("*.tmp.*"))

    def test_clear_removes_stale_temp_files(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        cache.put(JOB, "x")
        stale = cache.directory / "deadbeef.json.tmp.12345"
        stale.write_text("{", encoding="utf-8")
        removed = cache.clear()
        assert removed == 1  # temp files are removed but not counted
        assert not stale.exists()
        assert not list(tmp_path.rglob("*.tmp.*"))

    def test_sweep_removes_dead_writer_tmp(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        cache.directory.mkdir(parents=True)
        dead = cache.directory / f"abc.json.tmp.{self._dead_pid()}"
        dead.write_text("{", encoding="utf-8")
        garbled = cache.directory / "def.json.tmp.notapid"
        garbled.write_text("{", encoding="utf-8")
        assert cache.sweep_stale_tmp() == 2
        assert not dead.exists()
        assert not garbled.exists()

    def test_sweep_spares_live_writers(self, tmp_path):
        import subprocess
        import sys

        cache = ResultCache(root=tmp_path)
        cache.directory.mkdir(parents=True)
        live = subprocess.Popen([sys.executable, "-c",
                                 "import time; time.sleep(30)"])
        try:
            in_flight = cache.directory / f"abc.json.tmp.{live.pid}"
            in_flight.write_text("{", encoding="utf-8")
            assert cache.sweep_stale_tmp() == 0
            assert in_flight.exists()
        finally:
            live.kill()
            live.wait()

    def test_sweep_covers_artifact_dirs(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        artifacts = cache.artifact_dir("checkpoints")
        stale = artifacts / f"run.ckpt.json.tmp.{self._dead_pid()}"
        stale.write_text("{", encoding="utf-8")
        assert cache.sweep_stale_tmp() == 1
        assert not stale.exists()

    def test_sweep_runner_startup_sweeps(self, tmp_path):
        from repro.runner.sweep import SweepRunner

        cache = ResultCache(root=tmp_path)
        cache.directory.mkdir(parents=True)
        stale = cache.directory / f"abc.json.tmp.{self._dead_pid()}"
        stale.write_text("{", encoding="utf-8")
        SweepRunner(jobs=1, cache=cache)
        assert not stale.exists()

    def test_artifact_dir_is_version_stamped(self, tmp_path):
        cache = ResultCache(root=tmp_path, version="9.9.9")
        path = cache.artifact_dir("checkpoints")
        assert path.is_dir()
        assert path == tmp_path / "9.9.9" / "checkpoints"
