"""Tests for the on-disk result cache."""

import json


from repro.runner.cache import MISS, ResultCache
from repro.runner.jobs import Job

JOB = Job(func="repro.analysis.figure8:figure8_point",
          kwargs={"oc_name": "OC-768", "lookahead": 9})


class TestHitAndMiss:
    def test_empty_cache_misses(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        assert cache.get(JOB) is MISS
        assert cache.misses == 1

    def test_put_then_get(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        cache.put(JOB, {"value": 1.5})
        assert cache.get(JOB) == {"value": 1.5}
        assert cache.hits == 1

    def test_persists_across_instances(self, tmp_path):
        ResultCache(root=tmp_path).put(JOB, [1, 2, 3])
        assert ResultCache(root=tmp_path).get(JOB) == [1, 2, 3]

    def test_cached_none_is_not_a_miss(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        cache.put(JOB, None)
        assert cache.get(JOB) is None


class TestInvalidation:
    def test_different_kwargs_different_entry(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        other = Job(func=JOB.func, kwargs={"oc_name": "OC-768", "lookahead": 10})
        cache.put(JOB, "a")
        assert cache.get(other) is MISS
        assert cache.key(JOB) != cache.key(other)

    def test_different_function_different_entry(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        other = Job(func="repro.analysis.table2:table2_row", kwargs=JOB.kwargs)
        cache.put(JOB, "a")
        assert cache.get(other) is MISS

    def test_version_change_invalidates(self, tmp_path):
        ResultCache(root=tmp_path, version="1.0.0").put(JOB, "old")
        assert ResultCache(root=tmp_path, version="1.1.0").get(JOB) is MISS

    def test_version_directories_are_separate(self, tmp_path):
        cache = ResultCache(root=tmp_path, version="9.9.9")
        cache.put(JOB, "x")
        assert (tmp_path / "9.9.9").is_dir()

    def test_corrupted_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        cache.put(JOB, "good")
        cache.path(JOB).write_text("{not json", encoding="utf-8")
        assert cache.get(JOB) is MISS

    def test_key_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        cache.put(JOB, "good")
        entry = json.loads(cache.path(JOB).read_text(encoding="utf-8"))
        entry["key"] = "0" * 64
        cache.path(JOB).write_text(json.dumps(entry), encoding="utf-8")
        assert cache.get(JOB) is MISS

    def test_undeserialisable_entry_is_a_miss(self, tmp_path):
        # An entry referencing a class that no longer exists (e.g. a result
        # dataclass was renamed without a version bump) must self-heal by
        # recomputing, not poison every subsequent run.
        cache = ResultCache(root=tmp_path)
        cache.put(JOB, "good")
        entry = json.loads(cache.path(JOB).read_text(encoding="utf-8"))
        entry["result"] = {"__dataclass__": "repro.analysis.figure8:Gone",
                           "fields": {}}
        cache.path(JOB).write_text(json.dumps(entry), encoding="utf-8")
        assert cache.get(JOB) is MISS

    def test_entry_missing_result_key_is_a_miss(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        cache.put(JOB, "good")
        entry = json.loads(cache.path(JOB).read_text(encoding="utf-8"))
        del entry["result"]
        cache.path(JOB).write_text(json.dumps(entry), encoding="utf-8")
        assert cache.get(JOB) is MISS


class TestMaintenance:
    def test_len_counts_entries(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        assert len(cache) == 0
        cache.put(JOB, 1)
        assert len(cache) == 1

    def test_clear_removes_current_version_only(self, tmp_path):
        current = ResultCache(root=tmp_path, version="2.0.0")
        old = ResultCache(root=tmp_path, version="1.0.0")
        current.put(JOB, "new")
        old.put(JOB, "old")
        assert current.clear() == 1
        assert len(current) == 0
        assert old.get(JOB) == "old"

    def test_key_is_stable_across_processes(self, tmp_path):
        # The key must not depend on dict ordering or hash randomisation.
        a = Job(func="m:f", kwargs={"x": 1, "y": 2})
        b = Job(func="m:f", kwargs={"y": 2, "x": 1})
        cache = ResultCache(root=tmp_path, version="1.0.0")
        assert cache.key(a) == cache.key(b)
        assert len(cache.key(a)) == 64
