"""Chaos suite for the supervised sweep runner.

Pins the failure semantics the tentpole promises: poison jobs quarantine as
structured :class:`JobFailure` records instead of losing the sweep, worker
deaths and timeouts are attributed to exactly one job and retried, completed
siblings land in the cache even when the sweep aborts, and — the invariant —
any fault schedule that eventually lets every job complete produces results
bit-identical to the fault-free run.

Fleet tests run with ``jobs=2`` and a generous ``timeout``: the timeout
waives the CPU cap, so a real two-worker fleet spawns even on the one-CPU CI
container (and worker kills are real ``os._exit`` deaths, not simulations).
"""

import os

import pytest

import repro.runner.sweep as sweep_module
from repro.errors import ReproError, SweepFailure
from repro.faults import (
    FaultInjector,
    FaultPlan,
    InjectedPermanentError,
    using_faults,
)
from repro.obs.metrics import using_metrics
from repro.runner.cache import ResultCache
from repro.runner.jobs import Job
from repro.runner.sweep import JobFailure, SweepRunner

JOBS = "tests.runner.chaos_jobs"

#: Fleet kwargs: a timeout forces worker processes even on one CPU.
FLEET = {"jobs": 2, "timeout": 60}


def echo_jobs(n=6):
    return [Job(func=f"{JOBS}:square", kwargs={"x": i}, tag=f"sq{i}")
            for i in range(n)]


def poison_job(tag="poison"):
    return Job(func=f"{JOBS}:always_fails", kwargs={"tag": tag}, tag=tag)


class TestJobFailureQuarantine:
    def test_non_strict_yields_structured_failure_in_place(self):
        jobs = echo_jobs(4)
        jobs.insert(2, poison_job())
        results = SweepRunner(jobs=1, strict=False).run(jobs)
        assert [r for r in results if not isinstance(r, JobFailure)] \
            == [0, 1, 4, 9]
        failure = results[2]
        assert isinstance(failure, JobFailure)
        assert failure.tag == "poison"
        assert failure.kind == "error"
        assert failure.attempts == 1  # permanent: no retry
        assert "permanently broken" in failure.error
        assert "always_fails" in failure.traceback

    def test_strict_reraises_the_original_exception(self):
        jobs = [poison_job()] + echo_jobs(2)
        with pytest.raises(ReproError, match="permanently broken"):
            SweepRunner(jobs=1, strict=True).run(jobs)

    def test_strict_is_the_default(self):
        assert SweepRunner(jobs=1).strict is True

    def test_failure_never_cached(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        jobs = [poison_job(), echo_jobs(1)[0]]
        SweepRunner(jobs=1, cache=cache, strict=False).run(jobs)
        assert len(cache) == 1  # only the surviving job

    def test_fleet_poison_spares_siblings(self):
        jobs = echo_jobs(5)
        jobs.insert(1, poison_job())
        results = SweepRunner(strict=False, **FLEET).run(jobs)
        assert isinstance(results[1], JobFailure)
        assert [r for r in results if not isinstance(r, JobFailure)] \
            == [0, 1, 4, 9, 16]


class TestRetries:
    def test_transient_retried_to_success(self, tmp_path):
        marker = str(tmp_path / "marker")
        jobs = [Job(func=f"{JOBS}:transient_until_marker",
                    kwargs={"marker_path": marker, "value": 7}, tag="flaky")]
        results = SweepRunner(jobs=1, retries=2, backoff_s=0).run(jobs)
        assert results == [7]

    def test_transient_exhausted_becomes_failure(self, tmp_path):
        plan = FaultPlan(master_seed=1, rates={"transient": 1.0},
                         max_faulted_attempts=99)
        with using_faults(FaultInjector(plan)):
            results = SweepRunner(jobs=1, retries=2, backoff_s=0,
                                  strict=False).run(echo_jobs(1))
        failure = results[0]
        assert isinstance(failure, JobFailure)
        assert failure.attempts == 3  # first try + 2 retries

    def test_retry_metrics_counted(self, tmp_path):
        marker = str(tmp_path / "marker")
        jobs = [Job(func=f"{JOBS}:transient_until_marker",
                    kwargs={"marker_path": marker, "value": 1}, tag="flaky")]
        with using_metrics() as registry:
            SweepRunner(jobs=1, retries=2, backoff_s=0).run(jobs)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["runner.retries"] == 1

    def test_backoff_is_deterministic(self):
        runner = SweepRunner(jobs=1, backoff_s=0.05)
        job = echo_jobs(1)[0]
        first = runner._retry_delay(job, 0, 1)
        assert first == runner._retry_delay(job, 0, 1)
        # Exponential growth, jitter bounded in [1, 1.5).
        assert 0.05 <= first < 0.075
        assert 0.10 <= runner._retry_delay(job, 0, 2) < 0.15


class TestWorkerDeath:
    def test_dead_worker_attributed_and_quarantined(self):
        jobs = echo_jobs(3)
        jobs.insert(1, Job(func=f"{JOBS}:kill_worker", kwargs={},
                           tag="killer"))
        results = SweepRunner(strict=False, retries=1, backoff_s=0.01,
                              **FLEET).run(jobs)
        failure = results[1]
        assert isinstance(failure, JobFailure)
        assert failure.kind == "worker-death"
        assert failure.attempts == 2
        assert [r for r in results if not isinstance(r, JobFailure)] \
            == [0, 1, 4]

    def test_crash_then_recover_on_retry(self, tmp_path):
        marker = str(tmp_path / "marker")
        jobs = [Job(func=f"{JOBS}:crash_until_marker",
                    kwargs={"marker_path": marker, "value": 42},
                    tag="flaky-crash")] + echo_jobs(2)
        results = SweepRunner(retries=2, backoff_s=0.01, **FLEET).run(jobs)
        assert results == [42, 0, 1]

    def test_strict_worker_death_raises_sweep_failure_with_tag(self):
        jobs = [Job(func=f"{JOBS}:kill_worker", kwargs={}, tag="killer")]
        with pytest.raises(SweepFailure) as excinfo:
            SweepRunner(strict=True, retries=0, **FLEET).run(jobs)
        assert excinfo.value.failure.tag == "killer"
        assert "killer" in str(excinfo.value)

    def test_worker_death_metrics(self):
        jobs = [Job(func=f"{JOBS}:kill_worker", kwargs={}, tag="killer")]
        with using_metrics() as registry:
            SweepRunner(strict=False, retries=0, **FLEET).run(jobs)
        counters = registry.snapshot()["counters"]
        assert counters["runner.worker_deaths"] == 1
        assert counters["runner.jobs_failed"] == 1


class TestTimeouts:
    def test_hung_job_quarantined_siblings_survive(self):
        jobs = [Job(func=f"{JOBS}:slow_echo",
                    kwargs={"value": 1, "seconds": 30.0}, tag="hung")] \
            + echo_jobs(2)
        with using_metrics() as registry:
            results = SweepRunner(jobs=2, timeout=0.5, retries=0,
                                  strict=False).run(jobs)
        failure = results[0]
        assert isinstance(failure, JobFailure)
        assert failure.kind == "timeout"
        assert results[1:] == [0, 1]
        assert registry.snapshot()["counters"]["runner.timeouts"] == 1

    def test_strict_timeout_raises_sweep_failure(self):
        jobs = [Job(func=f"{JOBS}:slow_echo",
                    kwargs={"value": 1, "seconds": 30.0}, tag="hung")]
        with pytest.raises(SweepFailure) as excinfo:
            SweepRunner(jobs=2, timeout=0.5, retries=0, strict=True).run(jobs)
        assert excinfo.value.failure.kind == "timeout"
        assert excinfo.value.failure.tag == "hung"

    def test_timeout_validation(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            SweepRunner(jobs=1, timeout=0)
        with pytest.raises(ConfigurationError):
            SweepRunner(jobs=1, retries=-1)
        with pytest.raises(ConfigurationError):
            SweepRunner(jobs=1, backoff_s=-0.1)


class TestCrashResumeFromCache:
    def test_completed_jobs_cached_before_sweep_aborts(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        # Serial: two successes land in the cache before the poison job
        # aborts the (strict) sweep.
        jobs = echo_jobs(2) + [poison_job()] + echo_jobs(4)[2:]
        with pytest.raises(ReproError):
            SweepRunner(jobs=1, cache=cache, strict=True).run(jobs)
        assert len(cache) == 2
        # The rerun resumes from cache: only the still-missing jobs execute.
        rerun = SweepRunner(jobs=1, cache=cache, strict=False)
        results = rerun.run(jobs)
        assert rerun.executed == 3  # poison + the two never-started jobs
        assert [r for r in results if not isinstance(r, JobFailure)] \
            == [0, 1, 4, 9]

    def test_fleet_writes_cache_as_results_arrive(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        jobs = echo_jobs(4)
        SweepRunner(cache=cache, **FLEET).run(jobs)
        assert len(cache) == 4
        # Warm rerun executes nothing even if run_job is broken.
        def boom(job):
            raise AssertionError("cached sweep must not execute jobs")

        original = sweep_module.run_job
        sweep_module.run_job = boom
        try:
            assert SweepRunner(cache=cache, **FLEET).run(jobs) \
                == [0, 1, 4, 9]
        finally:
            sweep_module.run_job = original


class TestChaosInvariant:
    """Any eventually-completing fault schedule ⇒ bit-identical results."""

    #: Transient-only kinds: with retries >= max_faulted_attempts every job
    #: is guaranteed to complete, making the invariant checkable per seed.
    RATES = {"worker_kill": 0.3, "transient": 0.35, "delay": 0.2}

    def test_fifty_seeded_schedules_serial(self):
        jobs = echo_jobs(8)
        clean = SweepRunner(jobs=1).run(jobs)
        for seed in range(50):
            plan = FaultPlan(master_seed=seed, rates=self.RATES,
                             delay_s=0.0005)
            with using_faults(FaultInjector(plan)):
                faulted = SweepRunner(jobs=1, retries=3,
                                      backoff_s=0.001).run(jobs)
            assert faulted == clean, f"schedule {seed} diverged"

    def test_seeded_schedules_fleet_with_real_kills(self):
        jobs = echo_jobs(6)
        clean = SweepRunner(jobs=1).run(jobs)
        for seed in range(8):
            plan = FaultPlan(master_seed=seed, rates=self.RATES,
                             delay_s=0.0005)
            with using_faults(FaultInjector(plan)):
                faulted = SweepRunner(retries=3, backoff_s=0.001,
                                      **FLEET).run(jobs)
            assert faulted == clean, f"fleet schedule {seed} diverged"

    def test_corrupted_cache_entries_recompute_identically(self, tmp_path):
        jobs = echo_jobs(6)
        clean = SweepRunner(jobs=1).run(jobs)
        for seed in range(10):
            cache = ResultCache(root=tmp_path / f"seed{seed}")
            plan = FaultPlan(master_seed=seed, rates={"corrupt": 0.7})
            with using_faults(FaultInjector(plan)):
                first = SweepRunner(jobs=1, cache=cache).run(jobs)
                second = SweepRunner(jobs=1, cache=cache).run(jobs)
            assert first == clean and second == clean, f"seed {seed}"

    def test_permanent_fault_is_structured_not_lost(self):
        jobs = echo_jobs(4)
        plan = FaultPlan(master_seed=3, rates={"permanent": 0.5})
        injector = FaultInjector(plan)
        expected_failed = [i for i in range(4)
                           if injector.job_fault(f"job:sq{i}#{i}", 0)]
        assert expected_failed  # seed chosen so at least one job is poisoned
        with using_faults(FaultInjector(plan)):
            results = SweepRunner(jobs=1, strict=False).run(jobs)
        for index, result in enumerate(results):
            if index in expected_failed:
                assert isinstance(result, JobFailure)
                assert "InjectedPermanentError" in result.error
            else:
                assert result == index * index

    def test_injection_never_perturbs_simulation_rng(self):
        # A fault plan must not consume the random module's global stream:
        # a faulted simulation draws exactly the clean run's randomness.
        import random

        plan = FaultPlan(master_seed=1, rates={"transient": 0.5})
        injector = FaultInjector(plan)
        random.seed(99)
        expected = [random.random() for _ in range(5)]
        random.seed(99)
        for i in range(100):
            injector.job_fault(f"site{i}", 0)
            injector.corrupt_file(os.devnull, f"file{i}")
        assert [random.random() for _ in range(5)] == expected


class TestCacheQuarantine:
    def _entry_path(self, cache, job):
        return cache.path(job)

    def test_truncated_entry_quarantined_and_recomputed(self, tmp_path,
                                                        capsys):
        cache = ResultCache(root=tmp_path, verbose=True)
        job = echo_jobs(1)[0]
        SweepRunner(jobs=1, cache=cache).run([job])
        path = self._entry_path(cache, job)
        path.write_text(path.read_text()[:17])  # torn write
        with using_metrics() as registry:
            runner = SweepRunner(jobs=1, cache=cache)
            assert runner.run([job]) == [0]
            assert runner.executed == 1  # recomputed, not served
        assert cache.quarantined == 1
        assert registry.snapshot()["counters"]["cache.quarantined"] == 1
        assert path.with_name(path.name + ".bad").exists()
        assert "quarantined" in capsys.readouterr().err

    def test_wrong_key_entry_quarantined(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        job = echo_jobs(1)[0]
        SweepRunner(jobs=1, cache=cache).run([job])
        path = self._entry_path(cache, job)
        text = path.read_text().replace(cache.key(job), "0" * 64)
        path.write_text(text)
        assert SweepRunner(jobs=1, cache=cache).run([job]) == [0]
        assert cache.quarantined == 1

    def test_missing_entry_is_plain_miss_no_quarantine(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        assert cache.get(echo_jobs(1)[0]) is \
            __import__("repro.runner.cache", fromlist=["MISS"]).MISS
        assert cache.quarantined == 0

    def test_clear_removes_quarantined_files(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        job = echo_jobs(1)[0]
        SweepRunner(jobs=1, cache=cache).run([job])
        path = self._entry_path(cache, job)
        path.write_text("{")
        cache.get(job)
        assert path.with_name(path.name + ".bad").exists()
        cache.clear()
        assert not path.with_name(path.name + ".bad").exists()


class TestSweepAbortObservability:
    def test_sweep_s_observed_when_sweep_raises(self):
        with using_metrics() as registry:
            with pytest.raises(ReproError):
                SweepRunner(jobs=1, strict=True).run([poison_job()])
        timers = registry.snapshot()["timers"]
        assert "runner.sweep_s" in timers
        assert timers["runner.sweep_s"]["count"] == 1

    def test_sweep_abort_trace_names_the_failing_tag(self, tmp_path):
        import json

        from repro.obs.trace import TraceWriter, using_trace

        trace_path = tmp_path / "trace.ndjson"
        with TraceWriter(trace_path) as writer, using_trace(writer):
            with pytest.raises(ReproError):
                SweepRunner(jobs=1, strict=True).run(
                    echo_jobs(2) + [poison_job(tag="culprit")])
        events = [json.loads(line)
                  for line in trace_path.read_text().splitlines()]
        aborts = [e for e in events if e["event"] == "sweep_abort"]
        assert len(aborts) == 1
        assert aborts[0]["tag"] == "culprit"
        failed = [e for e in events if e["event"] == "job_failed"]
        assert failed and failed[0]["tag"] == "culprit"
