"""Tests for the sweep runner: determinism, parallelism, caching."""

import pytest

from repro.analysis.figure8 import figure8, figure8_jobs
from repro.analysis.figure11 import figure11, figure11_jobs
from repro.analysis.scaling import granularity_roadmap
from repro.analysis.table2 import table2
from repro.errors import ConfigurationError
from repro.runner.cache import ResultCache
from repro.runner.sweep import (
    SweepRunner,
    default_jobs,
    get_runner,
    set_runner,
    using_runner,
)


class TestConfiguration:
    def test_negative_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepRunner(jobs=-1)

    def test_zero_selects_auto(self):
        assert SweepRunner(jobs=0).jobs == default_jobs()

    def test_bad_chunksize_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepRunner(chunksize=0)


class TestDeterminism:
    def test_results_are_in_job_order(self):
        jobs = figure8_jobs("OC-768", points=6)
        results = SweepRunner(jobs=1).run(jobs)
        assert [p.lookahead_slots for p in results] == \
            [j.kwargs["lookahead"] for j in jobs]

    def test_parallel_results_identical_to_serial(self):
        jobs = figure8_jobs("OC-3072", points=8)
        serial = SweepRunner(jobs=1).run(jobs)
        parallel = SweepRunner(jobs=2).run(jobs)
        assert serial == parallel

    def test_parallel_figure11_identical_to_serial(self):
        jobs = figure11_jobs(queue_limit=256)
        serial = SweepRunner(jobs=1).run(jobs)
        parallel = SweepRunner(jobs=3).run(jobs)
        assert serial == parallel

    def test_cached_rerun_identical_to_fresh(self, tmp_path):
        jobs = figure8_jobs("OC-768", points=6)
        fresh = SweepRunner(jobs=1).run(jobs)
        cache = ResultCache(root=tmp_path)
        SweepRunner(jobs=1, cache=cache).run(jobs)
        cached = SweepRunner(jobs=1, cache=ResultCache(root=tmp_path)).run(jobs)
        assert cached == fresh


class TestCachingBehaviour:
    def test_cache_hit_skips_execution(self, tmp_path, monkeypatch):
        jobs = figure8_jobs("OC-768", points=5)
        cache = ResultCache(root=tmp_path)
        warm = SweepRunner(jobs=1, cache=cache)
        warm.run(jobs)
        assert warm.executed == len(jobs)

        # A warm cache must answer without calling any job function.
        import repro.runner.sweep as sweep_module

        def boom(job):
            raise AssertionError(f"job executed despite warm cache: {job}")

        monkeypatch.setattr(sweep_module, "run_job", boom)
        rerun = SweepRunner(jobs=1, cache=ResultCache(root=tmp_path))
        results = rerun.run(jobs)
        assert rerun.executed == 0
        assert results == warm.run(jobs)

    def test_config_change_recomputes(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        SweepRunner(jobs=1, cache=cache).run(figure8_jobs("OC-768", points=4))
        changed = SweepRunner(jobs=1, cache=cache)
        changed.run(figure8_jobs("OC-768", num_queues=64, points=4))
        assert changed.executed == 4  # no entry reused across configs

    def test_partial_cache_mixes_hit_and_compute(self, tmp_path):
        jobs = figure8_jobs("OC-768", points=6)
        cache = ResultCache(root=tmp_path)
        SweepRunner(jobs=1, cache=cache).run(jobs[:3])
        mixed = SweepRunner(jobs=1, cache=cache)
        results = mixed.run(jobs)
        assert mixed.executed == 3
        assert [p.lookahead_slots for p in results] == \
            [j.kwargs["lookahead"] for j in jobs]


class TestGlobalRunner:
    def test_default_runner_is_serial_uncached(self):
        runner = get_runner()
        assert runner.jobs == 1
        assert runner.cache is None

    def test_using_runner_restores_previous(self):
        before = get_runner()
        with using_runner(SweepRunner(jobs=2)) as inside:
            assert get_runner() is inside
        assert get_runner() is before

    def test_set_runner_none_restores_default(self):
        custom = SweepRunner(jobs=2)
        set_runner(custom)
        try:
            assert get_runner() is custom
        finally:
            set_runner(None)
        assert get_runner().jobs == 1

    def test_analysis_entry_points_use_installed_runner(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        runner = SweepRunner(jobs=1, cache=cache)
        with using_runner(runner):
            figure8("OC-768", points=4)
            table2("OC-768")
            granularity_roadmap("OC-3072", 512, years=[0.0, 3.0])
        assert runner.executed > 0
        assert len(cache) == runner.executed

    def test_parallel_entry_point_matches_serial(self):
        serial = figure11(queue_limit=128)
        with using_runner(SweepRunner(jobs=2)):
            parallel = figure11(queue_limit=128)
        assert serial == parallel
