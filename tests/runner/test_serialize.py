"""Tests for the JSON round-tripping of experiment results."""

import json

import pytest

from repro.analysis.figure8 import figure8_point
from repro.analysis.table2 import table2_row
from repro.errors import ConfigurationError
from repro.runner.serialize import from_jsonable, to_jsonable
from repro.sim.worstcase import run_rads_worst_case


class TestRoundTrip:
    def test_primitives_pass_through(self):
        for value in (None, True, 3, 2.5, "text"):
            assert from_jsonable(to_jsonable(value)) == value

    def test_lists_and_dicts(self):
        value = {"a": [1, 2.5, None], "b": {"c": "x"}}
        assert from_jsonable(to_jsonable(value)) == value

    def test_tuple_round_trips_as_tuple(self):
        assert from_jsonable(to_jsonable((1, "a"))) == (1, "a")

    def test_dataclass_reconstructs_equal(self):
        point = figure8_point("OC-768", lookahead=9)
        encoded = json.loads(json.dumps(to_jsonable(point)))
        assert from_jsonable(encoded) == point

    def test_dataclass_with_none_fields(self):
        row = table2_row("OC-3072", granularity=32)
        assert from_jsonable(to_jsonable(row)) == row

    def test_list_of_dataclasses(self):
        points = [figure8_point("OC-768", lookahead=la) for la in (9, 17)]
        assert from_jsonable(to_jsonable(points)) == points

    def test_simulation_summary(self):
        summary = run_rads_worst_case(num_queues=4, granularity=2, slots=64)
        assert from_jsonable(to_jsonable(summary)) == summary


class TestRejection:
    def test_non_string_dict_keys(self):
        with pytest.raises(ConfigurationError):
            to_jsonable({1: "a"})

    def test_arbitrary_objects(self):
        with pytest.raises(ConfigurationError):
            to_jsonable(object())

    def test_unknown_class_on_load(self):
        with pytest.raises(ConfigurationError):
            from_jsonable({"__dataclass__": "repro.analysis.figure8:Nope",
                           "fields": {}})
