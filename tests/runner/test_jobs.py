"""Tests for job declaration and resolution."""

import pytest

from repro.errors import ConfigurationError
from repro.runner.jobs import Job, resolve_function, run_job


class TestJobValidation:
    def test_requires_module_colon_attribute(self):
        with pytest.raises(ConfigurationError):
            Job(func="repro.analysis.figure8.figure8_point")

    def test_rejects_non_json_kwargs(self):
        with pytest.raises(ConfigurationError):
            Job(func="m:f", kwargs={"x": object()})

    def test_describe_mentions_func_and_kwargs(self):
        job = Job(func="repro.analysis.figure8:figure8_point",
                  kwargs={"oc_name": "OC-768", "lookahead": 9})
        text = job.describe()
        assert "figure8_point" in text
        assert "lookahead=9" in text

    def test_signature_excludes_tag(self):
        a = Job(func="m:f", kwargs={"x": 1}, tag="left")
        b = Job(func="m:f", kwargs={"x": 1}, tag="right")
        assert a.signature() == b.signature()


class TestResolution:
    def test_resolves_module_level_function(self):
        func = resolve_function("repro.analysis.figure8:figure8_point")
        assert callable(func)

    def test_resolves_nested_attribute(self):
        func = resolve_function("repro.rads.config:RADSConfig.for_line_rate")
        assert callable(func)

    def test_unknown_module(self):
        with pytest.raises(ConfigurationError):
            resolve_function("repro.no_such_module:f")

    def test_unknown_attribute(self):
        with pytest.raises(ConfigurationError):
            resolve_function("repro.analysis.figure8:no_such_function")

    def test_non_callable_attribute(self):
        with pytest.raises(ConfigurationError):
            resolve_function("repro.constants:CELL_SIZE_BYTES")


class TestRunJob:
    def test_executes_with_kwargs(self):
        job = Job(func="repro.analysis.intro_dram:intro_dram_row",
                  kwargs={"chip_name": "sdram-16mb", "num_chips": 8})
        row = run_job(job)
        assert row.num_chips == 8
        assert row.guaranteed_gbps == pytest.approx(5.12, rel=0.05)
