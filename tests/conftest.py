"""Shared pytest fixtures and helpers for the packet-buffer test suite."""

from __future__ import annotations

import pytest

from repro.core.config import CFDSConfig
from repro.rads.config import RADSConfig
from repro.types import Cell


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="rewrite the golden-report fixtures under tests/fixtures/golden/ "
             "from the current engine output instead of comparing to them")


@pytest.fixture
def small_rads_config() -> RADSConfig:
    """A small but non-trivial RADS configuration used across tests."""
    return RADSConfig(num_queues=4, granularity=3)


@pytest.fixture
def small_cfds_config() -> CFDSConfig:
    """A small but non-trivial CFDS configuration (B/b = 4 banks per group)."""
    return CFDSConfig(num_queues=8, dram_access_slots=8, granularity=2, num_banks=32)


def make_cells(queue: int, count: int, start_seqno: int = 0):
    """Build ``count`` consecutive cells of one queue."""
    return [Cell(queue=queue, seqno=start_seqno + i) for i in range(count)]
