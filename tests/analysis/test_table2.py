"""Tests for the Table 2 reproduction."""

import pytest

from repro.analysis.table2 import (
    PAPER_TABLE2_RR_SIZES,
    PAPER_TABLE2_SCHED_TIMES_NS,
    table2,
)


class TestRequestRegisterSizes:
    @pytest.mark.parametrize("oc_name", ["OC-768", "OC-3072"])
    def test_rr_sizes_match_paper_exactly(self, oc_name):
        rows = {row.granularity: row for row in table2(oc_name)}
        for granularity, expected in PAPER_TABLE2_RR_SIZES[oc_name].items():
            row = rows[granularity]
            if expected is None:
                assert not row.valid or row.granularity == row.dram_access_slots
            else:
                assert row.rr_size_hardware == expected, (
                    f"{oc_name} b={granularity}: expected RR {expected}, "
                    f"got {row.rr_size_hardware}")


class TestSchedulingTimes:
    @pytest.mark.parametrize("oc_name", ["OC-768", "OC-3072"])
    def test_scheduling_times_match_paper(self, oc_name):
        rows = {row.granularity: row for row in table2(oc_name)}
        for granularity, expected in PAPER_TABLE2_SCHED_TIMES_NS[oc_name].items():
            row = rows[granularity]
            if expected is None:
                assert row.scheduling_time_ns is None
            else:
                assert row.scheduling_time_ns == pytest.approx(expected)


class TestFeasibilityVerdicts:
    def test_oc768_is_always_feasible(self):
        """Paper: 'the implementation of the RR logic for OC-768 is fairly
        trivial'."""
        for row in table2("OC-768"):
            if row.valid and row.scheduling_time_ns is not None:
                assert row.feasibility == "trivial"

    def test_oc3072_b1_is_infeasible(self):
        """Paper: 'the implementation ... for OC-3072 and b=1 is certainly of
        difficult viability'."""
        rows = {row.granularity: row for row in table2("OC-3072")}
        assert rows[1].feasibility == "infeasible"

    def test_oc3072_intermediate_granularities_attainable(self):
        """Paper: 'the design is attainable for values of b higher than 2, and
        possible (yet aggressive) for b=2'."""
        rows = {row.granularity: row for row in table2("OC-3072")}
        for granularity in (16, 8, 4):
            assert rows[granularity].feasibility == "trivial"
        assert rows[2].feasibility in ("aggressive", "trivial")

    def test_invalid_granularities_flagged(self):
        rows = {row.granularity: row for row in table2("OC-768")}
        assert not rows[32].valid
        assert not rows[16].valid
