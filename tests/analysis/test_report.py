"""Tests for the text-table formatter."""

import pytest

from repro.analysis.report import format_table


class TestFormatTable:
    def test_basic_alignment(self):
        text = format_table(["a", "bee"], [[1, 2.5], [30, None]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "bee" in lines[0]
        assert "-" in lines[-1]  # None renders as a dash

    def test_title(self):
        text = format_table(["x"], [[1]], title="My table")
        assert text.splitlines()[0] == "My table"

    def test_bool_rendering(self):
        text = format_table(["ok"], [[True], [False]])
        assert "yes" in text and "no" in text

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        text = format_table(["v"], [[1234.5678], [0.00123], [3.14159]])
        assert "1234.6" in text
        assert "3.14" in text
