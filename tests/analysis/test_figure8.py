"""Tests for the Figure 8 reproduction (RADS SRAM vs lookahead)."""


from repro.analysis.figure8 import figure8, figure8_summary


class TestOC768Panel:
    def test_sram_size_endpoints_match_paper(self):
        summary = figure8_summary("OC-768")
        assert 250 < summary["sram_kbytes_min_lookahead"] < 350   # paper: ~300 kB
        assert 50 < summary["sram_kbytes_max_lookahead"] < 70     # paper: ~64 kB

    def test_oc768_is_feasible(self):
        """Paper conclusion: RADS is an ideal way of buffering at OC-768."""
        points = figure8("OC-768")
        assert all(p.linked_list_meets_budget for p in points)
        assert all(p.cam_meets_budget for p in points)

    def test_linked_list_area_is_modest(self):
        points = figure8("OC-768")
        assert all(p.linked_list_area_cm2 < 0.2 for p in points)


class TestOC3072Panel:
    def test_sram_size_endpoints_match_paper(self):
        summary = figure8_summary("OC-3072")
        assert 5.5 * 1024 < summary["sram_kbytes_min_lookahead"] < 7.0 * 1024  # ~6.2 MB
        assert 0.9 * 1024 < summary["sram_kbytes_max_lookahead"] < 1.1 * 1024  # ~1.0 MB

    def test_no_design_meets_the_3_2ns_budget(self):
        """Paper conclusion: RADS does not scale to OC-3072."""
        summary = figure8_summary("OC-3072")
        assert not summary["any_design_meets_budget"]

    def test_best_access_time_about_7ns_at_max_lookahead(self):
        summary = figure8_summary("OC-3072")
        assert 5.0 < summary["best_access_ns_max_lookahead"] < 8.5   # paper: ~7 ns


class TestCurveShape:
    def test_access_time_decreases_with_lookahead(self):
        points = figure8("OC-3072", points=12)
        cam_times = [p.cam_access_ns for p in points]
        assert cam_times[0] > cam_times[-1]

    def test_area_decreases_with_lookahead(self):
        points = figure8("OC-768", points=12)
        areas = [p.linked_list_area_cm2 for p in points]
        assert areas[0] > areas[-1]

    def test_queue_override(self):
        points = figure8("OC-768", num_queues=64, points=4)
        assert all(p.num_queues == 64 for p in points)
