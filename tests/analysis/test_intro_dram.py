"""Tests for the introduction's DRAM-only bandwidth analysis."""

import pytest

from repro.analysis.intro_dram import dram_family_comparison, intro_dram_analysis
from repro.tech.dram_chips import COMMODITY_DRAM_CHIPS, guaranteed_buffer_bandwidth_gbps


class TestSingleChipNumbers:
    def test_peak_bandwidth_matches_paper(self):
        chip = COMMODITY_DRAM_CHIPS["sdram-16mb"]
        assert chip.peak_bandwidth_gbps == pytest.approx(1.6)

    def test_guaranteed_bandwidth_close_to_paper(self):
        """Paper: ~1.2 Gb/s guaranteed for the single chip (we model the
        activate/precharge overhead slightly differently; within 15%)."""
        value = guaranteed_buffer_bandwidth_gbps("sdram-16mb", 1)
        assert value == pytest.approx(1.2, rel=0.15)

    def test_eight_chip_configuration_matches_paper(self):
        """Paper: an 8-chip, 8x wider configuration only guarantees 5.12 Gb/s."""
        value = guaranteed_buffer_bandwidth_gbps("sdram-16mb", 8)
        assert value == pytest.approx(5.12, rel=0.05)

    def test_diminishing_returns(self):
        one = guaranteed_buffer_bandwidth_gbps("sdram-16mb", 1)
        eight = guaranteed_buffer_bandwidth_gbps("sdram-16mb", 8)
        assert eight < 8 * one

    def test_unknown_chip(self):
        with pytest.raises(ValueError):
            guaranteed_buffer_bandwidth_gbps("no-such-chip", 1)


class TestAnalysisRows:
    def test_rows_cover_requested_counts(self):
        rows = intro_dram_analysis(chip_counts=(1, 4, 8))
        assert [r.num_chips for r in rows] == [1, 4, 8]
        assert all(r.guaranteed_gbps <= r.peak_gbps for r in rows)

    def test_efficiency_decreases_with_width(self):
        rows = intro_dram_analysis(chip_counts=(1, 2, 4, 8, 16))
        efficiencies = [r.efficiency for r in rows]
        assert efficiencies == sorted(efficiencies, reverse=True)

    def test_no_configuration_reaches_oc3072(self):
        rows = intro_dram_analysis(chip_counts=(1, 8, 32))
        assert not any(r.supports_oc3072 for r in rows)

    def test_family_comparison_includes_cited_parts(self):
        rows = dram_family_comparison(num_chips=8)
        names = {r.chip for r in rows}
        assert {"rldram", "fcram", "ddr-sdram"} <= names
