"""Tests for the Figure 11 reproduction (maximum number of queues)."""

import pytest

from repro.analysis.figure11 import figure11, figure11_summary, max_queues_for_granularity


@pytest.fixture(scope="module")
def points():
    return figure11()


@pytest.fixture(scope="module")
def summary():
    return figure11_summary()


class TestHeadline:
    def test_cfds_supports_several_hundred_queues(self, summary):
        """Paper: up to ~850 queues for OC-3072."""
        assert 500 <= summary["cfds_max_queues"] <= 1100

    def test_rads_supports_far_fewer(self, summary):
        assert summary["rads_max_queues"] < 300

    def test_improvement_factor_is_large(self, summary):
        """Paper: 'CFDS allows 6 times more queues'; we accept 3x-8x given the
        calibrated technology model."""
        assert 3.0 <= summary["improvement_ratio"] <= 8.0

    def test_best_granularity_is_intermediate(self, summary):
        assert summary["cfds_best_granularity"] in (2, 4, 8, 16)


class TestShape:
    def test_one_point_per_granularity(self, points):
        assert [p.granularity for p in points] == [32, 16, 8, 4, 2, 1]
        assert points[0].scheme == "RADS"
        assert all(p.scheme == "CFDS" for p in points[1:])

    def test_queue_counts_rise_then_fall(self, points):
        counts = [p.max_queues for p in points]
        peak_index = counts.index(max(counts))
        assert 0 < peak_index < len(counts) - 1
        assert counts[peak_index] > counts[0]
        assert counts[peak_index] > counts[-1]

    def test_reported_access_time_meets_budget(self, points):
        for p in points:
            if p.max_queues > 0:
                assert p.access_time_ns <= p.budget_ns


class TestSinglePoint:
    def test_zero_queue_result_when_budget_unreachable(self):
        point = max_queues_for_granularity(granularity=32, dram_access_slots=32,
                                           oc_name="OC-3072", queue_limit=4096)
        assert point.scheme == "RADS"
        assert point.max_queues > 0

    def test_respects_queue_limit(self):
        point = max_queues_for_granularity(granularity=8, dram_access_slots=32,
                                           queue_limit=100)
        assert point.max_queues <= 100
