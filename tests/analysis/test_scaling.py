"""Tests for the technology-scaling extension study."""

import pytest

from repro.analysis.scaling import (
    granularity_roadmap,
    projected_dram_access_ns,
    years_until_rads_suffices,
)


class TestProjection:
    def test_no_elapsed_time_is_identity(self):
        assert projected_dram_access_ns(0) == pytest.approx(48.0)

    def test_18_months_is_ten_percent(self):
        assert projected_dram_access_ns(1.5) == pytest.approx(48.0 * 0.9)

    def test_monotone_decrease(self):
        values = [projected_dram_access_ns(y) for y in (0, 3, 6, 12)]
        assert values == sorted(values, reverse=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            projected_dram_access_ns(-1)
        with pytest.raises(ValueError):
            projected_dram_access_ns(1, improvement_per_18_months=1.5)


class TestRoadmap:
    def test_granularity_shrinks_over_time(self):
        points = granularity_roadmap("OC-3072", num_queues=512)
        granularities = [p.granularity for p in points]
        assert granularities[0] == 32
        assert granularities[-1] < granularities[0]
        assert granularities == sorted(granularities, reverse=True)

    def test_sram_shrinks_with_granularity(self):
        points = granularity_roadmap("OC-3072", num_queues=512, years=[0, 9])
        assert points[1].head_sram_cells < points[0].head_sram_cells

    def test_oc3072_rads_not_feasible_today(self):
        point = granularity_roadmap("OC-3072", num_queues=512, years=[0])[0]
        assert not point.meets_budget

    def test_oc768_rads_feasible_today(self):
        point = granularity_roadmap("OC-768", num_queues=128, years=[0])[0]
        assert point.meets_budget


class TestYearsUntilSufficient:
    def test_oc768_needs_no_waiting(self):
        assert years_until_rads_suffices("OC-768", 128) == 0

    def test_oc3072_needs_many_years_of_dram_scaling(self):
        """The paper's motivating point: architectural change (CFDS) beats
        waiting for DRAM to get faster."""
        years = years_until_rads_suffices("OC-3072", 512)
        assert years is None or years > 10

    def test_validation(self):
        with pytest.raises(ValueError):
            years_until_rads_suffices("OC-768", 128, horizon_years=0)
