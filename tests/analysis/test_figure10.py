"""Tests for the Figure 10 reproduction (RADS vs CFDS area / access time)."""

import pytest

from repro.analysis.figure10 import figure10, figure10_summary


@pytest.fixture(scope="module")
def points():
    return figure10(points=8)


@pytest.fixture(scope="module")
def summary():
    return figure10_summary()


class TestHeadlineComparison:
    def test_some_cfds_configuration_meets_the_budget(self, summary):
        assert summary["cfds_compliant_exists"]

    def test_rads_never_meets_the_budget(self, points):
        rads = [p for p in points if p.scheme == "RADS"]
        assert rads and not any(p.meets_budget for p in rads)

    def test_rads_best_access_time_is_several_ns(self, summary):
        assert 5.0 < summary["best_rads_access_ns"] < 9.0    # paper: ~7 ns

    def test_cfds_compliant_delay_is_tens_of_microseconds_at_most(self, summary):
        assert summary["best_cfds_delay_us"] < 20.0          # paper: ~10 us

    def test_cfds_needs_much_less_area_than_rads(self, summary):
        assert summary["best_cfds_area_cm2"] < 0.5 * summary["best_rads_area_cm2"]


class TestTradeoffShape:
    def test_intermediate_granularity_is_optimal(self, points):
        """The paper: 'there is an optimal value of b for any given CFDS
        implementation' — the smallest SRAM is not at b=1 nor at b=16."""
        best_by_b = {}
        for p in points:
            if p.scheme != "CFDS":
                continue
            best_by_b.setdefault(p.granularity, min(
                q.head_sram_cells for q in points
                if q.scheme == "CFDS" and q.granularity == p.granularity))
        granularities = sorted(best_by_b)
        best_b = min(best_by_b, key=best_by_b.get)
        assert best_b not in (granularities[0], granularities[-1])

    def test_delay_includes_latency_register_for_cfds(self, points):
        for p in points:
            if p.scheme == "CFDS":
                assert p.latency_slots > 0
            else:
                assert p.latency_slots == 0

    def test_smaller_granularity_shrinks_base_sram(self, points):
        # At comparable (maximal) lookahead the b=8 head SRAM is far smaller
        # than the RADS (b=32) one.
        rads_max = max(p.head_sram_cells for p in points if p.scheme == "RADS")
        cfds_b8_max = max(p.head_sram_cells for p in points
                          if p.scheme == "CFDS" and p.granularity == 8)
        assert cfds_b8_max < rads_max / 2

    def test_points_carry_budget(self, points):
        assert all(p.budget_ns == pytest.approx(3.2) for p in points)
