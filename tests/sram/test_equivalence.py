"""Property-based equivalence of the three SRAM cell-store implementations.

The global CAM and unified linked-list models must behave exactly like the
reference SharedSRAM store under any legal sequence of insertions and
retrievals — that is what lets the simulators use the fast store while the
hardware-organisation models remain faithful.
"""

from hypothesis import given, settings, strategies as st

from repro.sram.cell_store import SharedSRAM
from repro.sram.global_cam import GlobalCAMStore
from repro.sram.linked_list import UnifiedLinkedListStore
from repro.types import Cell

NUM_QUEUES = 3
CAPACITY = 64


def _operations():
    """A sequence of (queue, op) pairs; op is 'insert' or 'pop'."""
    return st.lists(
        st.tuples(st.integers(min_value=0, max_value=NUM_QUEUES - 1),
                  st.sampled_from(["insert", "pop"])),
        min_size=1, max_size=120)


@given(_operations())
@settings(max_examples=60, deadline=None)
def test_cam_matches_reference(operations):
    reference = SharedSRAM(NUM_QUEUES, CAPACITY)
    cam = GlobalCAMStore(NUM_QUEUES, CAPACITY)
    next_seqno = [0] * NUM_QUEUES
    for queue, op in operations:
        if op == "insert":
            if reference.occupancy() >= CAPACITY:
                continue
            cell = Cell(queue=queue, seqno=next_seqno[queue])
            next_seqno[queue] += 1
            reference.insert(cell)
            cam.insert(cell)
        else:
            expected = reference.pop_next(queue)
            got = cam.pop_next(queue)
            assert (expected is None) == (got is None)
            if expected is not None:
                assert got.seqno == expected.seqno
    assert cam.occupancy() == reference.occupancy()
    for queue in range(NUM_QUEUES):
        assert cam.occupancy(queue) == reference.occupancy(queue)


@given(_operations(), st.integers(min_value=1, max_value=4))
@settings(max_examples=60, deadline=None)
def test_linked_list_matches_reference(operations, lists_per_queue):
    reference = SharedSRAM(NUM_QUEUES, CAPACITY)
    linked = UnifiedLinkedListStore(NUM_QUEUES, CAPACITY,
                                    lists_per_queue=lists_per_queue, block_cells=1)
    next_seqno = [0] * NUM_QUEUES
    for queue, op in operations:
        if op == "insert":
            if reference.occupancy() >= CAPACITY:
                continue
            cell = Cell(queue=queue, seqno=next_seqno[queue])
            next_seqno[queue] += 1
            reference.insert(cell)
            linked.insert(cell)
        else:
            expected = reference.pop_next(queue)
            got = linked.pop_next(queue)
            assert (expected is None) == (got is None)
            if expected is not None:
                assert got.seqno == expected.seqno
    assert linked.occupancy() == reference.occupancy()
