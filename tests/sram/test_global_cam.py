"""Tests for the global-CAM behavioural model."""

import pytest

from repro.errors import BufferOverflowError
from repro.sram.global_cam import GlobalCAMStore
from repro.types import Cell


def _cell(queue, seqno):
    return Cell(queue=queue, seqno=seqno)


class TestCAMStore:
    def test_in_order_retrieval(self):
        cam = GlobalCAMStore(num_queues=2, capacity_cells=8)
        for seqno in range(4):
            cam.insert(_cell(1, seqno))
        assert [cam.pop_next(1).seqno for _ in range(4)] == [0, 1, 2, 3]

    def test_out_of_order_insert_is_trivial_for_cam(self):
        # Section 8.2: out-of-order writes are trivial in the CAM because the
        # order is part of the tag.
        cam = GlobalCAMStore(num_queues=1, capacity_cells=8)
        for seqno in [3, 1, 0, 2]:
            cam.insert(_cell(0, seqno))
        assert [cam.pop_next(0).seqno for _ in range(4)] == [0, 1, 2, 3]

    def test_entries_are_reused_after_pop(self):
        cam = GlobalCAMStore(num_queues=1, capacity_cells=2)
        cam.insert(_cell(0, 0))
        cam.insert(_cell(0, 1))
        cam.pop_next(0)
        cam.insert(_cell(0, 2))  # fits because an entry was freed
        assert cam.occupancy() == 2

    def test_capacity_enforced(self):
        cam = GlobalCAMStore(num_queues=1, capacity_cells=2)
        cam.insert(_cell(0, 0))
        cam.insert(_cell(0, 1))
        with pytest.raises(BufferOverflowError):
            cam.insert(_cell(0, 2))

    def test_per_queue_occupancy(self):
        cam = GlobalCAMStore(num_queues=3, capacity_cells=8)
        cam.insert(_cell(0, 0))
        cam.insert(_cell(2, 0))
        cam.insert(_cell(2, 1))
        assert cam.occupancy(0) == 1
        assert cam.occupancy(1) == 0
        assert cam.occupancy(2) == 2

    def test_peek_does_not_remove(self):
        cam = GlobalCAMStore(num_queues=1, capacity_cells=4)
        cam.insert(_cell(0, 7))
        assert cam.peek_next(0).seqno == 7
        assert cam.occupancy() == 1

    def test_empty_queue(self):
        cam = GlobalCAMStore(num_queues=2, capacity_cells=4)
        assert cam.pop_next(1) is None
