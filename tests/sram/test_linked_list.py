"""Tests for the unified linked-list behavioural model."""

import pytest

from repro.errors import BufferOverflowError
from repro.sram.linked_list import UnifiedLinkedListStore
from repro.types import Cell


def _cell(queue, seqno):
    return Cell(queue=queue, seqno=seqno)


class TestSingleListPerQueue:
    def test_fifo_per_queue(self):
        store = UnifiedLinkedListStore(num_queues=2, capacity_cells=8)
        for seqno in range(4):
            store.insert(_cell(0, seqno))
        store.insert(_cell(1, 0))
        assert [store.pop_next(0).seqno for _ in range(4)] == [0, 1, 2, 3]
        assert store.pop_next(1).seqno == 0

    def test_entries_recycled_through_free_list(self):
        store = UnifiedLinkedListStore(num_queues=1, capacity_cells=3)
        for seqno in range(3):
            store.insert(_cell(0, seqno))
        store.pop_next(0)
        store.pop_next(0)
        store.insert(_cell(0, 3))
        store.insert(_cell(0, 4))
        assert [store.pop_next(0).seqno for _ in range(3)] == [2, 3, 4]

    def test_overflow(self):
        store = UnifiedLinkedListStore(num_queues=1, capacity_cells=2)
        store.insert(_cell(0, 0))
        store.insert(_cell(0, 1))
        with pytest.raises(BufferOverflowError):
            store.insert(_cell(0, 2))

    def test_occupancy_walks_pointers(self):
        store = UnifiedLinkedListStore(num_queues=2, capacity_cells=8)
        for seqno in range(3):
            store.insert(_cell(1, seqno))
        assert store.occupancy(1) == 3
        assert store.occupancy(0) == 0
        assert store.occupancy() == 3


class TestPerBankLists:
    """The CFDS variant: (B/b) lists per queue, one per bank of the group."""

    def test_out_of_order_blocks_resolved_across_sublists(self):
        # Blocks of 2 cells distributed over 2 sub-lists; block 1 (seqnos 2,3)
        # arrives before block 0 (seqnos 0,1) — as CFDS reordering can cause —
        # yet retrieval is still in seqno order.
        store = UnifiedLinkedListStore(num_queues=1, capacity_cells=8,
                                       lists_per_queue=2, block_cells=2)
        store.insert(_cell(0, 2))
        store.insert(_cell(0, 3))
        store.insert(_cell(0, 0))
        store.insert(_cell(0, 1))
        assert [store.pop_next(0).seqno for _ in range(4)] == [0, 1, 2, 3]

    def test_same_sublist_stays_fifo(self):
        store = UnifiedLinkedListStore(num_queues=1, capacity_cells=8,
                                       lists_per_queue=2, block_cells=1)
        # blocks alternate sub-lists: seqno 0 -> list 0, 1 -> list 1, 2 -> list 0 ...
        for seqno in [0, 1, 2, 3]:
            store.insert(_cell(0, seqno))
        assert [store.pop_next(0).seqno for _ in range(4)] == [0, 1, 2, 3]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            UnifiedLinkedListStore(num_queues=1, capacity_cells=4, lists_per_queue=0)
        with pytest.raises(ValueError):
            UnifiedLinkedListStore(num_queues=1, capacity_cells=4, block_cells=0)
