"""Tests for the sram layer."""
