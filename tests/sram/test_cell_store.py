"""Tests for the reference SharedSRAM cell store."""

import pytest

from repro.errors import BufferOverflowError
from repro.sram.cell_store import SharedSRAM
from repro.types import Cell


def _cell(queue, seqno):
    return Cell(queue=queue, seqno=seqno)


class TestBasicOperations:
    def test_insert_and_pop_in_order(self):
        sram = SharedSRAM(num_queues=2, capacity_cells=10)
        for seqno in range(3):
            sram.insert(_cell(0, seqno))
        assert [sram.pop_next(0).seqno for _ in range(3)] == [0, 1, 2]

    def test_pop_empty_returns_none(self):
        sram = SharedSRAM(num_queues=1)
        assert sram.pop_next(0) is None
        assert sram.peek_next(0) is None

    def test_out_of_order_insert_pops_in_seqno_order(self):
        sram = SharedSRAM(num_queues=1)
        for seqno in [4, 2, 3, 0, 1]:
            sram.insert(_cell(0, seqno))
        assert [sram.pop_next(0).seqno for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_queues_do_not_interfere(self):
        sram = SharedSRAM(num_queues=3)
        sram.insert(_cell(0, 0))
        sram.insert(_cell(2, 5))
        assert sram.pop_next(1) is None
        assert sram.pop_next(2).seqno == 5
        assert sram.occupancy() == 1

    def test_occupancy_per_queue_and_total(self):
        sram = SharedSRAM(num_queues=2)
        sram.insert_block([_cell(0, 0), _cell(0, 1), _cell(1, 0)])
        assert sram.occupancy(0) == 2
        assert sram.occupancy(1) == 1
        assert sram.occupancy() == 3

    def test_has_cell(self):
        sram = SharedSRAM(num_queues=2)
        sram.insert(_cell(1, 0))
        assert sram.has_cell(1)
        assert not sram.has_cell(0)

    def test_queue_bounds_checked(self):
        sram = SharedSRAM(num_queues=2)
        with pytest.raises(ValueError):
            sram.insert(_cell(7, 0))
        with pytest.raises(ValueError):
            sram.pop_next(-1)


class TestCapacity:
    def test_overflow_raises(self):
        sram = SharedSRAM(num_queues=1, capacity_cells=2)
        sram.insert(_cell(0, 0))
        sram.insert(_cell(0, 1))
        with pytest.raises(BufferOverflowError):
            sram.insert(_cell(0, 2))

    def test_unbounded_when_capacity_none(self):
        sram = SharedSRAM(num_queues=1, capacity_cells=None)
        for seqno in range(100):
            sram.insert(_cell(0, seqno))
        assert sram.occupancy() == 100

    def test_peak_occupancy(self):
        sram = SharedSRAM(num_queues=1, capacity_cells=10)
        sram.insert_block([_cell(0, i) for i in range(5)])
        for _ in range(5):
            sram.pop_next(0)
        assert sram.peak_occupancy == 5
        assert sram.occupancy() == 0

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            SharedSRAM(num_queues=0)
        with pytest.raises(ValueError):
            SharedSRAM(num_queues=1, capacity_cells=0)
