"""Tests of the perf-trajectory benchmark harness (``python -m repro bench``)."""

import json

import pytest

from repro.bench import (
    DEFAULT_OUTPUT,
    SUITE,
    render_results,
    run_suite,
    wide_scenario,
    write_results,
)
from repro.runner.cli import main


def test_suite_is_fixed_and_named():
    names = [case.name for case in SUITE]
    assert len(names) == len(set(names))
    # The fixed families every snapshot must carry.
    assert any(name.startswith("scenario/uniform-bernoulli") for name in names)
    assert any(name.startswith("wide-128") for name in names)
    assert any(name.startswith("mma-ablation") for name in names)
    assert any(name.startswith("switch/") for name in names)
    assert any(name.startswith("stream/") for name in names)
    assert DEFAULT_OUTPUT == "BENCH_9.json"


def test_run_suite_quick_document_shape():
    document = run_suite(quick=True, repeats=1, name_filter="uniform")
    assert document["schema"] == 1
    assert document["quick"] is True
    assert document["repeats"] == 1
    names = [bench["name"] for bench in document["benchmarks"]]
    assert names == [case.name for case in SUITE if "uniform" in case.name]
    for bench in document["benchmarks"]:
        assert bench["median_s"] > 0
        assert len(bench["samples_s"]) == 1
        assert bench["metrics"]["slots"] > 0
        assert bench["metrics"]["kslots_per_s"] > 0
    # All three engines of the same scenario ran: the derived ratios exist.
    assert "uniform-speedup-array-over-batched" in document["derived"]


def test_run_suite_median_is_median():
    document = run_suite(quick=True, repeats=3, name_filter="mma-ablation/ecqf")
    bench = document["benchmarks"][0]
    samples = sorted(bench["samples_s"])
    assert bench["median_s"] == samples[1]


def test_run_suite_rejects_bad_repeats():
    with pytest.raises(ValueError):
        run_suite(repeats=0)


def test_write_results_round_trips(tmp_path):
    document = run_suite(quick=True, repeats=1, name_filter="mma-ablation/ecqf")
    path = tmp_path / "bench.json"
    write_results(document, str(path))
    assert json.loads(path.read_text()) == document


def test_render_results_mentions_every_benchmark():
    document = run_suite(quick=True, repeats=1, name_filter="mma-ablation")
    text = render_results(document)
    assert "mma-ablation/ecqf" in text
    assert "mma-ablation/mdqf" in text
    assert "quick suite" in text


def test_wide_scenario_matches_benchmark_configuration():
    scenario = wide_scenario()
    assert scenario.scheme == "rads"
    assert scenario.buffer["num_queues"] == 128


class TestBenchCli:
    def test_list(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "wide-128/array" in out

    def test_quick_filtered_run_writes_json(self, tmp_path, capsys):
        output = tmp_path / "BENCH_test.json"
        code = main(["bench", "--quick", "--repeats", "1",
                     "--filter", "mma-ablation/ecqf", "-o", str(output)])
        assert code == 0
        out = capsys.readouterr().out
        assert "mma-ablation/ecqf" in out
        document = json.loads(output.read_text())
        assert document["quick"] is True
        assert [bench["name"] for bench in document["benchmarks"]] == [
            "mma-ablation/ecqf"]

    def test_dash_output_skips_file(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        code = main(["bench", "--quick", "--repeats", "1",
                     "--filter", "mma-ablation/ecqf", "-o", "-"])
        assert code == 0
        assert not list(tmp_path.iterdir())

    def test_unmatched_filter_errors(self, capsys):
        code = main(["bench", "--filter", "no-such-benchmark"])
        assert code == 1
        assert "no benchmark matches" in capsys.readouterr().err
