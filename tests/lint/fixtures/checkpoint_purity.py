"""Fixture: trips ``checkpoint-purity`` (the ``_bl8_arr`` bug class) and
nothing else."""

import ctypes

import numpy as np


class _ArrayCoreBase:
    pass


class FixtureCore(_ArrayCoreBase):
    def __init__(self, n):
        self.backlog = np.zeros(n)  # ndarray pickled with the core


def bridge(core, n):
    core._bl8_arr = (ctypes.c_int64 * n)()  # ctypes buffer on the core
