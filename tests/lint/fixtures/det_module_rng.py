"""Fixture: trips ``determinism`` (module-level RNG) and nothing else."""

import random


def draw():
    return random.random()  # ambient entropy, unseeded
