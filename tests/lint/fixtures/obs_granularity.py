"""Fixture: trips ``obs-granularity`` (metrics in a per-slot loop) and
nothing else."""


def run(metrics, num_slots):
    for slot in range(num_slots):
        metrics.inc("slots_run")  # per-slot metric update
    return num_slots
