"""Fixture: violates no rule."""

import random


def simulate(num_slots, seed, metrics):
    rng = random.Random(seed)
    total = 0
    for slot in range(num_slots):
        total += rng.randrange(4)
    metrics.inc("spans_run")  # after the loop: span granularity
    return total


def ordered(queues):
    return [q for q in sorted(set(queues))]
