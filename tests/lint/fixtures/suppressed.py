"""Fixture: one violation silenced by the inline escape hatch."""


def validate(load):
    if load < 0:
        # Deliberate builtin for the suppression test.
        raise ValueError("negative")  # repro-lint: disable=error-taxonomy
    return load
