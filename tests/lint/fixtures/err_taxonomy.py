"""Fixture: trips ``error-taxonomy`` (bare builtin raise) and nothing else."""


def validate(load):
    if not 0.0 <= load <= 1.0:
        raise ValueError("load must be in [0, 1]")
    return load
