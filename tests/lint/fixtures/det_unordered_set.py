"""Fixture: trips ``determinism`` (unordered-set iteration) and nothing else."""


def tally(queues):
    hot = set(queues)
    total = 0
    for queue in hot:  # hash order feeds the result
        total += queue
    return total
