"""Static analysis of the C span kernel source.

cppcheck and clang-tidy are CI tools (installed in the ``lint-invariants``
job); locally these tests skip when the binaries are absent so the tier-1
suite stays dependency-free.
"""

import shutil
import subprocess
from pathlib import Path

import pytest

import repro

SOURCE = Path(repro.__file__).parent / "sim" / "_spankernel.c"


def test_kernel_source_is_bundled():
    assert SOURCE.is_file()


@pytest.mark.skipif(shutil.which("cppcheck") is None,
                    reason="cppcheck not installed")
def test_cppcheck_clean():
    proc = subprocess.run(
        ["cppcheck", "--std=c99", "--enable=warning,portability",
         "--error-exitcode=1", "--inline-suppr", str(SOURCE)],
        capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, proc.stderr


@pytest.mark.skipif(shutil.which("clang-tidy") is None,
                    reason="clang-tidy not installed")
def test_clang_tidy_analyzer_clean():
    # The clang static analyzer checks are the blocking set; style checks
    # stay advisory (run in CI with full output, not asserted here).
    proc = subprocess.run(
        ["clang-tidy", "--quiet",
         "--checks=-*,clang-analyzer-*,bugprone-*",
         "--warnings-as-errors=clang-analyzer-*",
         str(SOURCE), "--", "-std=c99"],
        capture_output=True, text=True, timeout=600)
    assert proc.returncode == 0, proc.stdout + proc.stderr
