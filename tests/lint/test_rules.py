"""Each fixture trips exactly its own rule; the escape hatch silences."""

from pathlib import Path

import pytest

from repro.lint import lint_paths
from repro.lint.engine import rule_names

FIXTURES = Path(__file__).parent / "fixtures"

#: fixture file -> the single rule it violates.
EXPECTED = {
    "det_unordered_set.py": "determinism",
    "det_module_rng.py": "determinism",
    "checkpoint_purity.py": "checkpoint-purity",
    "err_taxonomy.py": "error-taxonomy",
    "obs_granularity.py": "obs-granularity",
}


@pytest.mark.parametrize("fixture,rule", sorted(EXPECTED.items()))
def test_fixture_trips_exactly_its_rule(fixture, rule):
    findings, stats = lint_paths([FIXTURES / fixture])
    assert findings, f"{fixture} should trip {rule}"
    assert {f.rule for f in findings} == {rule}
    assert stats.files_scanned == 1
    for finding in findings:
        assert finding.path.endswith(fixture)
        assert finding.line > 0 and finding.col > 0
        assert finding.message


@pytest.mark.parametrize("fixture", sorted(EXPECTED))
def test_fixture_is_silent_for_every_other_rule(fixture):
    other_rules = sorted(set(rule_names()) - {EXPECTED[fixture]})
    findings, _ = lint_paths([FIXTURES / fixture], other_rules)
    assert findings == []


def test_clean_fixture_trips_nothing():
    findings, stats = lint_paths([FIXTURES / "clean.py"])
    assert findings == []
    assert stats.suppressed == 0


def test_disable_comment_silences_and_is_counted():
    findings, stats = lint_paths([FIXTURES / "suppressed.py"])
    assert findings == []
    assert stats.suppressed == 1


def test_disable_comment_is_rule_specific():
    # The suppression names error-taxonomy only; running just that rule
    # still reports nothing, proving the silencing is per-rule not blanket.
    findings, _ = lint_paths([FIXTURES / "suppressed.py"],
                             ["error-taxonomy"])
    assert findings == []


def test_whole_directory_scan_aggregates(tmp_path):
    findings, stats = lint_paths([FIXTURES])
    assert stats.files_scanned == len(list(FIXTURES.glob("*.py")))
    assert {f.rule for f in findings} == set(EXPECTED.values())


def test_unknown_rule_rejected():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError, match="unknown lint rule"):
        lint_paths([FIXTURES / "clean.py"], ["no-such-rule"])


def test_missing_path_rejected():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError, match="no such file"):
        lint_paths([FIXTURES / "does_not_exist.py"])


def test_findings_are_sorted():
    findings, _ = lint_paths([FIXTURES])
    keys = [(f.path, f.line, f.col, f.rule) for f in findings]
    assert keys == sorted(keys)
