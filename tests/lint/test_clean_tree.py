"""The committed tree satisfies every invariant the linter enforces.

This is the acceptance gate of the lint subsystem: a PR that introduces a
bare ``raise ValueError`` in ``sim/``, stashes an ndarray on a span core,
or iterates an unordered set into a report fails here before it fails in
production.
"""

from pathlib import Path

import repro
from repro.lint import lint_paths
from repro.lint.engine import rule_names

PACKAGE = Path(repro.__file__).parent


def test_repro_package_lints_clean():
    findings, stats = lint_paths([PACKAGE])
    rendered = "\n".join(f.render() for f in findings)
    assert findings == [], f"tree must lint clean, got:\n{rendered}"
    assert stats.files_scanned > 50  # the whole package, not a subset
    assert stats.rules == sorted(rule_names())


def test_scoped_rules_each_run_clean():
    # Rule-by-rule, so a future regression names the violated contract in
    # the failing test id instead of one aggregate assert.
    for rule in rule_names():
        findings, _ = lint_paths([PACKAGE], [rule])
        rendered = "\n".join(f.render() for f in findings)
        assert findings == [], f"{rule} regressed:\n{rendered}"
