"""``python -m repro lint`` CLI contract: exit codes and the JSON schema."""

import json
from pathlib import Path

import pytest

from repro.lint.diagnostics import SCHEMA_VERSION
from repro.lint.engine import rule_names
from repro.runner.cli import main

FIXTURES = Path(__file__).parent / "fixtures"


class TestExitCodes:
    def test_clean_input_exits_zero(self, capsys):
        assert main(["lint", str(FIXTURES / "clean.py")]) == 0
        out = capsys.readouterr().out
        assert "clean: 1 file checked" in out

    def test_findings_exit_one(self, capsys):
        assert main(["lint", str(FIXTURES / "err_taxonomy.py")]) == 1
        out = capsys.readouterr().out
        assert "[error-taxonomy]" in out
        assert "err_taxonomy.py:6:" in out  # file:line diagnostics

    def test_unknown_rule_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["lint", "--rules", "bogus", str(FIXTURES / "clean.py")])
        assert excinfo.value.code == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_is_runtime_error(self, capsys):
        assert main(["lint", str(FIXTURES / "nope.py")]) == 1
        assert capsys.readouterr().err.startswith("error:")

    def test_default_paths_lint_the_package(self, capsys):
        # Satellite acceptance: the installed tree is clean.
        assert main(["lint"]) == 0

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in rule_names():
            assert rule in out


class TestRuleSelection:
    def test_rules_subset_runs_only_named(self, capsys):
        code = main(["lint", "--rules", "determinism", "--json",
                     str(FIXTURES / "err_taxonomy.py")])
        assert code == 0  # taxonomy fixture is clean under determinism
        document = json.loads(capsys.readouterr().out)
        assert document["rules"] == ["determinism"]
        assert document["counts"] == {"determinism": 0}

    def test_rules_accepts_comma_list(self, capsys):
        code = main(["lint", "--rules", "determinism,error-taxonomy",
                     "--json", str(FIXTURES / "err_taxonomy.py")])
        assert code == 1
        document = json.loads(capsys.readouterr().out)
        assert document["counts"]["error-taxonomy"] == 1
        assert document["counts"]["determinism"] == 0


class TestJsonSchema:
    def test_document_shape_is_pinned(self, capsys):
        assert main(["lint", "--json", str(FIXTURES / "err_taxonomy.py")]) == 1
        document = json.loads(capsys.readouterr().out)
        assert sorted(document) == ["counts", "files_scanned", "findings",
                                    "paths", "rules", "suppressed",
                                    "version"]
        assert document["version"] == SCHEMA_VERSION
        assert document["rules"] == sorted(rule_names())
        assert document["files_scanned"] == 1
        assert document["suppressed"] == 0
        (finding,) = document["findings"]
        assert sorted(finding) == ["col", "line", "message", "path",
                                   "rule", "symbol"]
        assert finding["rule"] == "error-taxonomy"
        assert finding["line"] == 6
        assert finding["symbol"] == "ValueError"
        # counts carries an entry per selected rule, zeros included.
        assert set(document["counts"]) == set(rule_names())

    def test_version_is_one(self):
        assert SCHEMA_VERSION == 1

    def test_suppressed_counted_in_json(self, capsys):
        assert main(["lint", "--json",
                     str(FIXTURES / "suppressed.py")]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["findings"] == []
        assert document["suppressed"] == 1


class TestOutputFile:
    def test_report_written_to_file(self, tmp_path, capsys):
        out = tmp_path / "lint.json"
        code = main(["lint", "--json", "-o", str(out),
                     str(FIXTURES / "clean.py")])
        assert code == 0
        document = json.loads(out.read_text())
        assert document["findings"] == []
        assert capsys.readouterr().out == ""
