"""The deterministic fault injector: pure in (master_seed, site), bounded
interference, replayable corruption."""

import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    InjectedPermanentError,
    InjectedTransientError,
    InjectedWorkerKill,
    TransientJobError,
    get_injector,
    set_injector,
    using_faults,
)


class TestFaultPlanValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(master_seed=1, rates={"meteor_strike": 0.5})

    @pytest.mark.parametrize("rate", [-0.1, 1.5])
    def test_out_of_range_rate_rejected(self, rate):
        with pytest.raises(ConfigurationError):
            FaultPlan(master_seed=1, rates={"transient": rate})

    def test_negative_attempt_cap_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(master_seed=1, max_faulted_attempts=-1)

    def test_negative_delay_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(master_seed=1, delay_s=-0.5)

    def test_every_known_kind_accepted(self):
        FaultPlan(master_seed=1, rates={k: 0.5 for k in FAULT_KINDS})

    def test_json_round_trip(self):
        plan = FaultPlan(master_seed=42, rates={"transient": 0.3},
                         max_faulted_attempts=3, delay_s=0.01)
        assert FaultPlan.from_json(plan.to_json()) == plan


class TestDeterminism:
    def test_same_seed_same_decisions(self):
        plan = FaultPlan(master_seed=7, rates={"transient": 0.5,
                                               "worker_kill": 0.3})
        sites = [f"job:tag{i}#{i}" for i in range(200)]
        first = [FaultInjector(plan).job_fault(s, 0) for s in sites]
        second = [FaultInjector(plan).job_fault(s, 0) for s in sites]
        assert first == second
        assert any(kind is not None for kind in first)  # rates do fire

    def test_different_seeds_differ(self):
        sites = [f"job:tag{i}#{i}" for i in range(200)]
        a = [FaultInjector(FaultPlan(master_seed=1,
                                     rates={"transient": 0.5}))
             .job_fault(s, 0) for s in sites]
        b = [FaultInjector(FaultPlan(master_seed=2,
                                     rates={"transient": 0.5}))
             .job_fault(s, 0) for s in sites]
        assert a != b

    def test_rate_zero_never_fires(self):
        injector = FaultInjector(FaultPlan(master_seed=3, rates={}))
        assert all(injector.job_fault(f"s{i}", 0) is None
                   for i in range(100))

    def test_rate_one_always_fires_below_cap(self):
        injector = FaultInjector(FaultPlan(master_seed=3,
                                           rates={"transient": 1.0}))
        assert all(injector.job_fault(f"s{i}", 0) == "transient"
                   for i in range(20))

    def test_attempt_cap_guarantees_progress(self):
        plan = FaultPlan(master_seed=5, rates={k: 1.0 for k in FAULT_KINDS},
                         max_faulted_attempts=2)
        injector = FaultInjector(plan)
        assert injector.job_fault("site", 0) is not None
        assert injector.job_fault("site", 1) is not None
        assert injector.job_fault("site", 2) is None
        assert injector.job_fault("site", 99) is None

    def test_no_global_rng_consumed(self):
        import random

        random.seed(123)
        before = random.random()
        random.seed(123)
        injector = FaultInjector(FaultPlan(master_seed=9,
                                           rates={"transient": 0.5}))
        for i in range(50):
            injector.job_fault(f"s{i}", 0)
        assert random.random() == before


class TestApplyJobFault:
    def test_transient_raises_retryable(self):
        injector = FaultInjector(FaultPlan(master_seed=1,
                                           rates={"transient": 1.0}))
        with pytest.raises(InjectedTransientError):
            injector.apply_job_fault("site", 0)
        assert issubclass(InjectedTransientError, TransientJobError)

    def test_permanent_not_retryable(self):
        injector = FaultInjector(FaultPlan(master_seed=1,
                                           rates={"permanent": 1.0}))
        with pytest.raises(InjectedPermanentError):
            injector.apply_job_fault("site", 0)
        assert not issubclass(InjectedPermanentError, TransientJobError)

    def test_worker_kill_degrades_in_process(self):
        # Not a daemonic worker here, so the kill must degrade to a
        # transient exception instead of os._exit-ing the test process.
        injector = FaultInjector(FaultPlan(master_seed=1,
                                           rates={"worker_kill": 1.0}))
        with pytest.raises(InjectedWorkerKill):
            injector.apply_job_fault("site", 0)

    def test_delay_sleeps_and_returns(self):
        injector = FaultInjector(FaultPlan(master_seed=1,
                                           rates={"delay": 1.0},
                                           delay_s=0.0))
        injector.apply_job_fault("site", 0)  # no exception

    def test_fired_counters(self):
        injector = FaultInjector(FaultPlan(master_seed=1,
                                           rates={"transient": 1.0}))
        for _ in range(3):
            with pytest.raises(InjectedTransientError):
                injector.apply_job_fault("site", 0)
        assert injector.fired["transient"] == 3


class TestCorruptFile:
    def _write(self, path, data=b"0123456789abcdef"):
        path.write_bytes(data)
        return path

    def test_deterministic_corruption(self, tmp_path):
        plan = FaultPlan(master_seed=11, rates={"corrupt": 1.0})
        a = self._write(tmp_path / "a.json")
        b = self._write(tmp_path / "b.json")
        assert FaultInjector(plan).corrupt_file(a, "site-x")
        assert FaultInjector(plan).corrupt_file(b, "site-x")
        assert a.read_bytes() == b.read_bytes()  # same site, same damage
        assert a.read_bytes() != b"0123456789abcdef"

    def test_different_sites_differ_somewhere(self, tmp_path):
        plan = FaultPlan(master_seed=11, rates={"corrupt": 1.0})
        injector = FaultInjector(plan)
        outcomes = set()
        for i in range(20):
            path = self._write(tmp_path / f"f{i}.json")
            injector.corrupt_file(path, f"site-{i}")
            outcomes.add(path.read_bytes())
        assert len(outcomes) > 1

    def test_rate_zero_leaves_file_alone(self, tmp_path):
        path = self._write(tmp_path / "a.json")
        injector = FaultInjector(FaultPlan(master_seed=11, rates={}))
        assert not injector.corrupt_file(path, "site")
        assert path.read_bytes() == b"0123456789abcdef"

    def test_missing_file_is_a_noop(self, tmp_path):
        injector = FaultInjector(FaultPlan(master_seed=11,
                                           rates={"corrupt": 1.0}))
        assert not injector.corrupt_file(tmp_path / "nope.json", "site")

    def test_empty_file_left_alone(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_bytes(b"")
        injector = FaultInjector(FaultPlan(master_seed=11,
                                           rates={"corrupt": 1.0}))
        assert not injector.corrupt_file(path, "site")


class TestActiveInjector:
    def test_default_is_none(self):
        assert get_injector() is None

    def test_using_faults_installs_and_restores(self):
        injector = FaultInjector(FaultPlan(master_seed=1))
        with using_faults(injector) as active:
            assert active is injector
            assert get_injector() is injector
        assert get_injector() is None

    def test_set_injector_none_disables(self):
        injector = FaultInjector(FaultPlan(master_seed=1))
        set_injector(injector)
        try:
            assert get_injector() is injector
        finally:
            set_injector(None)
        assert get_injector() is None
