"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    BankConflictError,
    BufferOverflowError,
    CacheMissError,
    ConfigurationError,
    QueueEmptyError,
    RenamingError,
    ReproError,
    SchedulingError,
)


class TestHierarchy:
    @pytest.mark.parametrize("exc_class", [
        ConfigurationError, CacheMissError, BankConflictError,
        BufferOverflowError, QueueEmptyError, RenamingError, SchedulingError,
    ])
    def test_all_derive_from_repro_error(self, exc_class):
        assert issubclass(exc_class, ReproError)


class TestCacheMissError:
    def test_carries_queue_and_slot(self):
        error = CacheMissError(queue=7, slot=123)
        assert error.queue == 7
        assert error.slot == 123
        assert "queue 7" in str(error)
        assert "123" in str(error)


class TestBankConflictError:
    def test_message_mentions_bank_and_slots(self):
        error = BankConflictError(bank=5, slot=40, busy_until=48)
        assert error.bank == 5
        assert "bank 5" in str(error)
        assert "48" in str(error)


class TestBufferOverflowError:
    def test_carries_capacity_and_occupancy(self):
        error = BufferOverflowError("tail SRAM", capacity=10, occupancy=11)
        assert error.capacity == 10
        assert error.occupancy == 11
        assert "tail SRAM" in str(error)


class TestQueueEmptyError:
    def test_default_message(self):
        error = QueueEmptyError(queue=3)
        assert "3" in str(error)
