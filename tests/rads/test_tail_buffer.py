"""Tests for the RADS tail-side simulator."""

import pytest

from repro.errors import BufferOverflowError
from repro.rads.config import RADSConfig
from repro.rads.tail_buffer import RADSTailBuffer
from repro.types import Cell


def _cell(queue, seqno):
    return Cell(queue=queue, seqno=seqno)


class TestEvictions:
    def test_full_block_evicted_once_threshold_reached(self):
        evicted = []
        config = RADSConfig(num_queues=2, granularity=3)
        tail = RADSTailBuffer(config, evict_sink=lambda q, cells: evicted.append((q, cells)))
        seqno = 0
        for _ in range(6):
            tail.step(_cell(0, seqno))
            seqno += 1
        assert evicted, "a block should have been evicted"
        queue, cells = evicted[0]
        assert queue == 0
        assert len(cells) == 3
        assert [c.seqno for c in cells] == [0, 1, 2]

    def test_eviction_cadence_is_one_block_per_granularity(self):
        config = RADSConfig(num_queues=1, granularity=4)
        evictions = []
        tail = RADSTailBuffer(config, evict_sink=lambda q, cells: evictions.append(len(cells)))
        for seqno in range(64):
            tail.step(_cell(0, seqno))
        # One arrival per slot and one block of 4 per 4 slots: the tail should
        # keep up and never hold more than a block or two.
        assert tail.result.max_tail_sram_occupancy <= config.effective_tail_sram_cells
        assert sum(evictions) + tail.occupancy() == 64

    def test_no_eviction_below_threshold(self):
        config = RADSConfig(num_queues=4, granularity=4)
        evictions = []
        tail = RADSTailBuffer(config, evict_sink=lambda q, cells: evictions.append(cells))
        for queue in range(4):
            for seqno in range(3):
                tail.step(_cell(queue, seqno))
        assert not evictions
        assert tail.occupancy() == 12

    def test_fifo_order_preserved_across_evictions(self):
        config = RADSConfig(num_queues=1, granularity=2)
        collected = []
        tail = RADSTailBuffer(config, evict_sink=lambda q, cells: collected.extend(cells))
        for seqno in range(10):
            tail.step(_cell(0, seqno))
        for _ in range(4):
            tail.step(None)
        collected.extend(tail.pop_direct(0, 10))
        assert [c.seqno for c in collected] == list(range(10))


class TestCapacity:
    def test_overflow_detected_when_arrivals_exceed_capacity(self):
        # With 4 queues at granularity 4, keeping every queue below the
        # threshold (3 cells) while adding a 4th queue beyond capacity should
        # overflow a deliberately undersized SRAM.
        config = RADSConfig(num_queues=4, granularity=4, tail_sram_cells=5, strict=True)
        tail = RADSTailBuffer(config)
        tail.step(_cell(0, 0))
        tail.step(_cell(0, 1))
        tail.step(_cell(1, 0))
        tail.step(_cell(1, 1))
        tail.step(_cell(2, 0))
        with pytest.raises(BufferOverflowError):
            tail.step(_cell(3, 0))

    def test_record_mode_counts_instead_of_raising(self):
        config = RADSConfig(num_queues=4, granularity=4, tail_sram_cells=2, strict=False)
        tail = RADSTailBuffer(config)
        for queue in range(4):
            tail.step(_cell(queue, 0))
        assert tail.result.miss_count == 2

    def test_peek_and_pop_direct(self):
        config = RADSConfig(num_queues=2, granularity=4)
        tail = RADSTailBuffer(config)
        tail.step(_cell(1, 0))
        tail.step(_cell(1, 1))
        assert tail.peek_direct(1).seqno == 0
        assert [c.seqno for c in tail.pop_direct(1, 5)] == [0, 1]
        assert tail.peek_direct(1) is None
