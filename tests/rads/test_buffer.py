"""Tests for the assembled RADS packet buffer."""

import pytest

from repro.rads.buffer import RADSPacketBuffer
from repro.rads.config import RADSConfig
from repro.sim.engine import ClosedLoopSimulation
from repro.traffic.arbiters import OldestCellArbiter, RandomArbiter, RoundRobinAdversary
from repro.traffic.arrivals import BernoulliArrivals, RoundRobinArrivals


@pytest.fixture
def buffer():
    return RADSPacketBuffer(RADSConfig(num_queues=4, granularity=3))


class TestAdmissibility:
    def test_cannot_request_empty_queue(self, buffer):
        assert not buffer.can_request(0)
        with pytest.raises(ValueError):
            buffer.step(arrival=None, request=0)

    def test_backlog_tracks_arrivals_and_requests(self, buffer):
        buffer.step(arrival=2, request=None)
        buffer.step(arrival=2, request=None)
        assert buffer.backlog(2) == 2
        buffer.step(arrival=None, request=2)
        assert buffer.backlog(2) == 1


class TestEndToEndFIFO:
    def test_cells_leave_in_arrival_order_per_queue(self, buffer):
        # Fill each queue, then request everything round-robin.
        for _ in range(12):
            for queue in range(4):
                buffer.step(arrival=queue, request=None)
        adversary = RoundRobinAdversary(4)
        served = []
        for _ in range(48):
            backlog = [buffer.backlog(q) for q in range(4)]
            request = adversary.next_request(0, backlog)
            cell = buffer.step(arrival=None, request=request)
            if cell is not None:
                served.append(cell)
        served.extend(buffer.drain())
        assert len(served) == 48
        for queue in range(4):
            seqnos = [c.seqno for c in served if c.queue == queue]
            assert seqnos == list(range(12))

    def test_zero_miss_under_closed_loop_traffic(self):
        config = RADSConfig(num_queues=8, granularity=4)
        buffer = RADSPacketBuffer(config)
        simulation = ClosedLoopSimulation(buffer,
                                          BernoulliArrivals(8, load=0.9, seed=5),
                                          RandomArbiter(8, load=0.95, seed=6))
        report = simulation.run(4000)
        assert report.zero_miss
        assert report.buffer_result.cells_out == report.throughput.departures

    def test_saturating_round_robin_traffic(self):
        config = RADSConfig(num_queues=4, granularity=3)
        buffer = RADSPacketBuffer(config)
        simulation = ClosedLoopSimulation(buffer,
                                          RoundRobinArrivals(4),
                                          OldestCellArbiter(4))
        report = simulation.run(3000)
        assert report.zero_miss
        # Work conserving at full load: carried load close to offered load.
        assert report.throughput.departures > 0.9 * report.throughput.arrivals

    def test_combined_result_aggregates_sides(self, buffer):
        for _ in range(30):
            buffer.step(arrival=0, request=None)
        for _ in range(10):
            buffer.step(arrival=None, request=0)
        buffer.drain()
        result = buffer.combined_result()
        assert result.cells_in >= 0
        assert result.cells_out == 10
        assert result.dram_writes > 0
        assert result.zero_miss

    def test_dram_holds_overflow_of_long_queue(self, buffer):
        for _ in range(40):
            buffer.step(arrival=1, request=None)
        assert buffer.dram.occupancy(1) > 0
        assert buffer.tail.occupancy(1) < 40
