"""Tests for the RADS analytical sizing formulas."""

import pytest

from repro.rads import sizing


class TestECQFBounds:
    def test_max_lookahead(self):
        assert sizing.ecqf_max_lookahead(128, 8) == 128 * 7 + 1
        assert sizing.ecqf_max_lookahead(512, 32) == 512 * 31 + 1

    def test_safe_lookahead_adds_one_decision_period(self):
        assert (sizing.ecqf_safe_lookahead(128, 8)
                == sizing.ecqf_max_lookahead(128, 8) + 7)

    def test_min_sram(self):
        assert sizing.ecqf_min_sram_cells(128, 8) == 896
        assert sizing.ecqf_min_sram_cells(512, 32) == 15872

    def test_validation(self):
        with pytest.raises(ValueError):
            sizing.ecqf_max_lookahead(0, 8)
        with pytest.raises(ValueError):
            sizing.ecqf_min_sram_cells(8, 0)


class TestRadsSramSize:
    def test_max_lookahead_matches_floor(self):
        lookahead = sizing.ecqf_max_lookahead(128, 8)
        assert sizing.rads_sram_size(lookahead, 128, 8) == 896

    def test_monotone_decreasing_in_lookahead(self):
        sizes = [sizing.rads_sram_size(la, 128, 8) for la in (8, 64, 256, 512, 897)]
        assert sizes == sorted(sizes, reverse=True)

    def test_paper_endpoints_oc768(self):
        """Figure 8 discussion: 300 kB at minimum lookahead, 64 kB at maximum."""
        min_kb = sizing.rads_sram_bytes(8, 128, 8) / 1024
        max_kb = sizing.rads_sram_bytes(sizing.ecqf_max_lookahead(128, 8), 128, 8) / 1024
        assert 250 < min_kb < 350
        assert 50 < max_kb < 70

    def test_paper_endpoints_oc3072(self):
        """Figure 8 discussion: 6.2 MB at minimum lookahead, 1.0 MB at maximum."""
        min_mb = sizing.rads_sram_bytes(32, 512, 32) / 2 ** 20
        max_mb = sizing.rads_sram_bytes(sizing.ecqf_max_lookahead(512, 32), 512, 32) / 2 ** 20
        assert 5.5 < min_mb < 7.0
        assert 0.9 < max_mb < 1.1

    def test_larger_lookahead_than_max_does_not_reduce_further(self):
        max_lookahead = sizing.ecqf_max_lookahead(64, 4)
        assert (sizing.rads_sram_size(10 * max_lookahead, 64, 4)
                == sizing.rads_sram_size(max_lookahead, 64, 4))

    def test_granularity_one_degenerates(self):
        assert sizing.rads_sram_size(1, 16, 1) == 16

    def test_invalid_lookahead(self):
        with pytest.raises(ValueError):
            sizing.rads_sram_size(0, 8, 4)


class TestOtherBounds:
    def test_mdqf_larger_than_ecqf(self):
        assert sizing.mdqf_sram_cells(128, 8) > sizing.ecqf_min_sram_cells(128, 8)

    def test_tail_sram(self):
        assert sizing.tail_sram_cells(4, 3) == 4 * 2 + 3

    def test_lookahead_sweep_covers_range(self):
        sweep = sizing.lookahead_sweep(128, 8, points=10)
        assert sweep[0] >= 8
        assert sweep[-1] == sizing.ecqf_max_lookahead(128, 8)
        assert sweep == sorted(sweep)

    def test_lookahead_sweep_validation(self):
        with pytest.raises(ValueError):
            sizing.lookahead_sweep(128, 8, points=1)
