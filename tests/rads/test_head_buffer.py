"""Tests for the RADS head-side simulator."""

import pytest

from repro.errors import CacheMissError
from repro.mma.mdqf import MDQF
from repro.rads.config import RADSConfig
from repro.rads.head_buffer import RADSHeadBuffer
from repro.traffic.arbiters import RoundRobinAdversary


def _run_adversary(config, slots=3000):
    buffer = RADSHeadBuffer(config)
    adversary = RoundRobinAdversary(config.num_queues)
    unbounded = [10 ** 9] * config.num_queues
    return buffer, buffer.run(adversary.next_request(s, unbounded) for s in range(slots))


class TestZeroMissGuarantee:
    @pytest.mark.parametrize("num_queues,granularity", [(4, 3), (8, 4), (16, 8), (5, 2)])
    def test_round_robin_adversary_never_misses(self, num_queues, granularity):
        config = RADSConfig(num_queues=num_queues, granularity=granularity)
        _, result = _run_adversary(config)
        assert result.zero_miss
        assert result.cells_out == 3000

    def test_every_request_is_served_exactly_in_order(self):
        config = RADSConfig(num_queues=4, granularity=3)
        buffer = RADSHeadBuffer(config)
        adversary = RoundRobinAdversary(4)
        served = []
        for slot in range(800):
            cell = buffer.step(adversary.next_request(slot, [10 ** 9] * 4))
            if cell is not None:
                served.append(cell)
        for _ in range(config.effective_lookahead):
            cell = buffer.step(None)
            if cell is not None:
                served.append(cell)
        per_queue = {}
        for cell in served:
            per_queue.setdefault(cell.queue, []).append(cell.seqno)
        for queue, seqnos in per_queue.items():
            assert seqnos == list(range(len(seqnos)))

    def test_sram_occupancy_stays_near_analytical_bound_under_adversary(self):
        """Under the paper's worst-case (round-robin) pattern the occupancy
        stays at the analytical Q(B-1) requirement plus at most two blocks
        (the in-flight block and the decision-phase margin)."""
        config = RADSConfig(num_queues=8, granularity=4)
        _, result = _run_adversary(config)
        analytical = 8 * 3
        assert result.max_head_sram_occupancy <= analytical + 2 * 4
        assert result.max_head_sram_occupancy <= config.effective_head_sram_cells

    def test_undersized_lookahead_misses_in_record_mode(self):
        # Cut the lookahead far below the ECQF requirement: the adversary must
        # eventually provoke a miss, demonstrating that the bound is not slack.
        config = RADSConfig(num_queues=8, granularity=4, lookahead=4, strict=False)
        _, result = _run_adversary(config, slots=2000)
        assert result.miss_count > 0

    def test_undersized_lookahead_raises_in_strict_mode(self):
        config = RADSConfig(num_queues=8, granularity=4, lookahead=4, strict=True)
        buffer = RADSHeadBuffer(config)
        adversary = RoundRobinAdversary(8)
        with pytest.raises(CacheMissError):
            for slot in range(2000):
                buffer.step(adversary.next_request(slot, [10 ** 9] * 8))


class TestMechanics:
    def test_requests_delayed_by_exactly_the_lookahead(self):
        config = RADSConfig(num_queues=2, granularity=2, lookahead=6)
        buffer = RADSHeadBuffer(config)
        buffer.step(0)
        grants = []
        for _ in range(10):
            grants.append(buffer.step(None))
        # The grant appears on the shift that happens 6 slots after issue.
        assert grants[:5] == [None] * 5
        assert grants[5] is not None and grants[5].queue == 0

    def test_idle_slots_produce_no_grant(self):
        config = RADSConfig(num_queues=2, granularity=2)
        buffer = RADSHeadBuffer(config)
        for _ in range(50):
            assert buffer.step(None) is None

    def test_invalid_request_rejected(self):
        config = RADSConfig(num_queues=2, granularity=2)
        buffer = RADSHeadBuffer(config)
        with pytest.raises(ValueError):
            buffer.step(7)

    def test_dram_reads_counted(self):
        config = RADSConfig(num_queues=4, granularity=3)
        _, result = _run_adversary(config, slots=600)
        assert result.dram_reads > 0
        # One block read per granularity period at most.
        assert result.dram_reads <= 600 // 3 + config.effective_lookahead // 3 + 2

    def test_works_with_mdqf_policy(self):
        config = RADSConfig(num_queues=6, granularity=3)
        buffer = RADSHeadBuffer(config, mma=MDQF())
        adversary = RoundRobinAdversary(6)
        result = buffer.run(adversary.next_request(s, [10 ** 9] * 6) for s in range(1500))
        assert result.zero_miss

    def test_bypass_source_must_return_in_order_cell(self):
        from repro.types import Cell

        config = RADSConfig(num_queues=2, granularity=2, lookahead=2, strict=False)
        buffer = RADSHeadBuffer(config, bypass_source=lambda q, seq: Cell(queue=q, seqno=seq + 5))
        buffer.dram._backlogged.clear()  # force the SRAM to be empty
        buffer.step(0)
        buffer.step(None)
        with pytest.raises(ValueError):
            buffer.step(None)
