"""Tests for the rads layer."""
