"""Tests for RADSConfig."""

import pytest

from repro.errors import ConfigurationError
from repro.rads.config import RADSConfig
from repro.rads.sizing import ecqf_max_lookahead, ecqf_safe_lookahead, rads_sram_size


class TestDefaults:
    def test_effective_lookahead_is_ecqf_maximum_plus_phase_margin(self):
        config = RADSConfig(num_queues=16, granularity=4)
        assert config.effective_lookahead == ecqf_safe_lookahead(16, 4)
        assert config.effective_lookahead == ecqf_max_lookahead(16, 4) + 3

    def test_explicit_lookahead_respected(self):
        config = RADSConfig(num_queues=16, granularity=4, lookahead=10)
        assert config.effective_lookahead == 10

    def test_head_sram_default_adds_prefetch_window_margin(self):
        config = RADSConfig(num_queues=16, granularity=4)
        expected = (rads_sram_size(config.effective_lookahead, 16, 4)
                    + config.effective_lookahead + 4)
        assert config.effective_head_sram_cells == expected

    def test_tail_sram_default(self):
        config = RADSConfig(num_queues=16, granularity=4)
        assert config.effective_tail_sram_cells == 16 * 3 + 4


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"num_queues": 0, "granularity": 4},
        {"num_queues": 4, "granularity": 0},
        {"num_queues": 4, "granularity": 4, "lookahead": 0},
        {"num_queues": 4, "granularity": 4, "head_sram_cells": 0},
        {"num_queues": 4, "granularity": 4, "tail_sram_cells": -1},
    ])
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            RADSConfig(**kwargs)


class TestForLineRate:
    def test_oc768_defaults(self):
        config = RADSConfig.for_line_rate("OC-768")
        assert config.num_queues == 128
        assert config.granularity == 8

    def test_oc3072_defaults(self):
        config = RADSConfig.for_line_rate("OC-3072")
        assert config.num_queues == 512
        assert config.granularity == 32

    def test_queue_override(self):
        config = RADSConfig.for_line_rate("OC-768", num_queues=64)
        assert config.num_queues == 64

    def test_custom_dram_changes_granularity(self):
        config = RADSConfig.for_line_rate("OC-3072", dram_random_access_ns=20.0)
        assert config.granularity < 32

    def test_unknown_line_rate(self):
        with pytest.raises(ConfigurationError):
            RADSConfig.for_line_rate("OC-9999")
