"""Bench snapshot comparison and the direction-aware regression gate."""

import json
from pathlib import Path

import pytest

from repro.obs.compare import (
    HIGHER_BETTER,
    LOWER_BETTER,
    BenchCompareError,
    compare_documents,
    load_bench_document,
    ratio_direction,
    ratio_regressions,
    render_compare,
)


def make_document(medians, derived, directions=None, quick=True,
                  slots=1500):
    """A minimal valid bench document (medians in seconds)."""
    document = {
        "suite": "repro-bench",
        "schema": 1,
        "quick": quick,
        "repeats": 3,
        "benchmarks": [
            {"name": name, "median_s": median, "samples_s": [median],
             "metrics": {"slots": slots,
                         "kslots_per_s": round(slots / median / 1e3, 1)}}
            for name, median in medians.items()],
        "derived": dict(derived),
    }
    if directions is not None:
        document["derived_directions"] = dict(directions)
    return document


class TestLoad:
    def test_round_trips_a_valid_snapshot(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(make_document({"a": 0.01}, {})),
                        encoding="utf-8")
        document = load_bench_document(path)
        assert document["suite"] == "repro-bench"
        assert document["_path"] == str(path)

    def test_missing_file_is_a_compare_error(self, tmp_path):
        with pytest.raises(BenchCompareError, match="cannot read"):
            load_bench_document(tmp_path / "nope.json")

    def test_invalid_json_is_a_compare_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope", encoding="utf-8")
        with pytest.raises(BenchCompareError, match="not valid JSON"):
            load_bench_document(path)

    def test_wrong_suite_is_a_compare_error(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"suite": "something-else",
                                    "benchmarks": []}), encoding="utf-8")
        with pytest.raises(BenchCompareError, match="not a repro bench"):
            load_bench_document(path)


class TestDirections:
    def test_directions_table_wins(self):
        document = make_document({}, {"x-overhead": 1.0},
                                 directions={"x-overhead": HIGHER_BETTER})
        assert ratio_direction("x-overhead", document) == HIGHER_BETTER

    def test_heuristic_for_old_snapshots(self):
        # Pre-table snapshots (BENCH_5.json and earlier) have no
        # derived_directions; "overhead" in the name means lower is better.
        old = make_document({}, {"stream-checkpoint-overhead": 1.02,
                                 "wide-128-speedup": 5.0})
        assert ratio_direction("stream-checkpoint-overhead", old) \
            == LOWER_BETTER
        assert ratio_direction("wide-128-speedup", old) == HIGHER_BETTER

    def test_current_document_preferred_over_baseline(self):
        current = make_document({}, {}, directions={"r": LOWER_BETTER})
        baseline = make_document({}, {}, directions={"r": HIGHER_BETTER})
        assert ratio_direction("r", current, baseline) == LOWER_BETTER


class TestCompare:
    def test_per_benchmark_deltas(self):
        baseline = make_document({"a": 0.010, "b": 0.020}, {})
        current = make_document({"a": 0.012, "b": 0.020}, {})
        report = compare_documents(baseline, current)
        rows = {row["name"]: row for row in report["benchmarks"]}
        assert rows["a"]["median_delta_pct"] == pytest.approx(20.0)
        assert rows["b"]["median_delta_pct"] == pytest.approx(0.0)
        assert report["missing_in_current"] == []
        assert report["missing_in_baseline"] == []

    def test_median_delta_suppressed_across_slot_counts(self):
        baseline = make_document({"a": 0.10}, {}, quick=False, slots=50000)
        current = make_document({"a": 0.01}, {}, quick=True, slots=1500)
        row = compare_documents(baseline, current)["benchmarks"][0]
        assert row["slots_match"] is False
        assert row["median_delta_pct"] is None
        # Throughput stays comparable across quick/full.
        assert row["kslots_delta_pct"] is not None

    def test_disjoint_benchmarks_are_listed_not_diffed(self):
        baseline = make_document({"only-base": 0.01}, {})
        current = make_document({"only-cur": 0.01}, {})
        report = compare_documents(baseline, current)
        assert report["benchmarks"] == []
        assert report["missing_in_current"] == ["only-base"]
        assert report["missing_in_baseline"] == ["only-cur"]

    def test_ratio_regression_is_direction_aware(self):
        directions = {"speedup": HIGHER_BETTER, "overhead": LOWER_BETTER}
        baseline = make_document({}, {"speedup": 5.0, "overhead": 1.0},
                                 directions=directions)
        current = make_document({}, {"speedup": 4.0, "overhead": 1.2},
                                directions=directions)
        ratios = {row["name"]: row
                  for row in compare_documents(baseline, current)["ratios"]}
        # The speedup fell 20% — a regression of 20%.
        assert ratios["speedup"]["regression_pct"] == pytest.approx(20.0)
        # The overhead rose 20% — also a regression, because lower is better.
        assert ratios["overhead"]["regression_pct"] == pytest.approx(20.0)

    def test_improvement_is_zero_regression(self):
        directions = {"speedup": HIGHER_BETTER}
        baseline = make_document({}, {"speedup": 5.0}, directions=directions)
        current = make_document({}, {"speedup": 6.0}, directions=directions)
        row = compare_documents(baseline, current)["ratios"][0]
        assert row["delta_pct"] == pytest.approx(20.0)
        assert row["regression_pct"] == 0.0


class TestGate:
    def report(self, base=5.0, cur=4.0):
        baseline = make_document({}, {"speedup": base},
                                 directions={"speedup": HIGHER_BETTER})
        current = make_document({}, {"speedup": cur},
                                directions={"speedup": HIGHER_BETTER})
        return compare_documents(baseline, current)

    def test_regression_beyond_threshold_fails(self):
        failures = ratio_regressions(self.report(), threshold_pct=10)
        assert [row["name"] for row in failures] == ["speedup"]

    def test_regression_within_threshold_passes(self):
        assert ratio_regressions(self.report(), threshold_pct=25) == []

    def test_gate_restricted_to_named_ratios(self):
        failures = ratio_regressions(self.report(), threshold_pct=10,
                                     ratio_names=["speedup"])
        assert len(failures) == 1

    def test_unknown_ratio_name_is_loud(self):
        # A typo in --ratios must not silently pass the gate.
        with pytest.raises(BenchCompareError, match="not in the compare"):
            ratio_regressions(self.report(), threshold_pct=10,
                              ratio_names=["speedpu"])

    def test_render_verdict_lines(self):
        report = self.report()
        failures = ratio_regressions(report, threshold_pct=10)
        text = render_compare(report, threshold_pct=10, failures=failures)
        assert "<< REGRESSION" in text
        assert "FAIL: 1 ratio(s) regressed more than 10%" in text
        ok = render_compare(self.report(cur=5.0), threshold_pct=10,
                            failures=[])
        assert "OK: no gated ratio regressed more than 10%" in ok

    def test_render_marks_ungated_ratios(self):
        baseline = make_document({}, {"a": 1.0, "b": 1.0})
        current = make_document({}, {"a": 1.0, "b": 1.0})
        report = compare_documents(baseline, current)
        text = render_compare(report, threshold_pct=10, ratio_names=["a"],
                              failures=[])
        assert "(not gated)" in text


class TestOldSnapshots:
    """Pin against the committed snapshots: BENCH_3.json predates both the
    ``cpus`` field and the ``derived_directions`` table, and comparing it
    must degrade gracefully rather than raise."""

    REPO_ROOT = Path(__file__).resolve().parents[2]

    def load(self, name):
        return load_bench_document(self.REPO_ROOT / name)

    def test_bench3_vs_bench5_compares_cleanly(self):
        bench3 = self.load("BENCH_3.json")
        bench5 = self.load("BENCH_5.json")
        report = compare_documents(bench3, bench5)
        assert report["benchmarks"], "the snapshots share no benchmarks"
        assert report["ratios"], "the snapshots share no derived ratios"
        # Missing cpus surfaces as "unknown", never a KeyError or null.
        assert report["baseline"]["cpus"] == "unknown"
        assert report["current"]["cpus"] != "unknown"
        text = render_compare(report, threshold_pct=50,
                              failures=ratio_regressions(report, 50))
        assert "cpus unknown" in text

    def test_directionless_snapshots_use_the_heuristic(self):
        bench3 = self.load("BENCH_3.json")
        assert "derived_directions" not in bench3
        assert ratio_direction("stream-checkpoint-overhead", bench3) \
            == LOWER_BETTER
        assert ratio_direction("wide-128-speedup-array-over-batched",
                               bench3) == HIGHER_BETTER
