"""The observability layer's hard invariants, end to end.

* Enabling metrics and tracing never changes any report — scenario runs on
  all three engines, switch runs and the differential fuzzer produce
  bit-identical results with and without observability installed.
* Metric state rides inside the checkpoint envelope: a run checkpointed and
  resumed reports the same cumulative work counters as the uninterrupted
  run.
* The disabled path costs nothing measurable: a ``run()`` with metrics off
  is within noise of calling the engine dispatch directly (wide-128, the
  per-slot-overhead stressor).
"""

import time

import pytest

from repro.bench.suite import wide_scenario
from repro.obs.metrics import disable_metrics, enable_metrics, using_metrics
from repro.obs.trace import TraceWriter, set_trace, using_trace
from repro.sim.streaming import StreamingSimulation
from repro.workloads.fuzz import fuzz_many
from repro.workloads.registry import get_scenario

ENGINES = ("reference", "batched", "array")


@pytest.fixture(autouse=True)
def _observability_off():
    previous = disable_metrics()
    previous_trace = set_trace(None)
    yield
    disable_metrics()
    if previous is not None:
        enable_metrics(previous)
    set_trace(previous_trace)


def assert_reports_identical(left, right, context=""):
    assert left.throughput == right.throughput, context
    assert left.latency == right.latency, context
    assert left.buffer_result == right.buffer_result, context


def drive_to(session, stop_slot):
    arrivals = session.sim.arrivals
    while session.slot < stop_slot:
        count = min(session.chunk_slots, stop_slot - session.slot)
        window = arrivals.arrivals_slice(session.slot, count)
        session._execute(window if isinstance(window, list)
                         else list(window))


# --------------------------------------------------------------------- #
# Observability never changes a report
# --------------------------------------------------------------------- #

@pytest.mark.parametrize("engine", ENGINES)
def test_metrics_and_trace_leave_reports_bit_identical(engine, tmp_path):
    scenario = get_scenario("uniform-bernoulli")
    plain = scenario.build_simulation().run(1500, engine=engine)
    with using_metrics() as registry:
        with TraceWriter(tmp_path / "t.ndjson") as writer:
            with using_trace(writer):
                observed = scenario.build_simulation().run(1500,
                                                           engine=engine)
    assert_reports_identical(plain, observed, engine)
    # And the run really was recorded.
    assert registry.counter(f"engine.{engine}.runs") == 1
    assert registry.counter("engine.slots_simulated") == 1500


def test_streamed_run_is_invariant_under_metrics(tmp_path):
    scenario = get_scenario("markov-onoff")
    plain = scenario.build_simulation().run_stream(2000, engine="array",
                                                  chunk_slots=300)
    with using_metrics() as registry:
        observed = scenario.build_simulation().run_stream(2000,
                                                          engine="array",
                                                          chunk_slots=300)
    assert_reports_identical(plain, observed)
    # The session registry folded into the active one at finish().
    assert registry.counter("stream.slots") >= 2000
    assert registry.counter("stream.chunks") >= 7


def test_fuzzer_passes_with_observability_enabled(tmp_path):
    """The differential fuzzer pins the whole invariant: every engine,
    monolithic and streamed, stays bit-identical while metrics and tracing
    are live."""
    with using_metrics() as registry:
        with TraceWriter(tmp_path / "fuzz.ndjson") as writer:
            with using_trace(writer):
                summary = fuzz_many(3, master_seed=101)
    assert summary.ok, summary.failures
    assert summary.cases == 3
    assert registry.counter("fuzz.cases") == 3
    assert registry.counter("fuzz.divergent_cases") == 0


# --------------------------------------------------------------------- #
# Metric state across checkpoint/resume
# --------------------------------------------------------------------- #

def test_resumed_metric_totals_equal_the_uninterrupted_run(tmp_path):
    scenario = get_scenario("uniform-bernoulli")
    num_slots, chunk, every = 2500, 500, 1000

    path_a = tmp_path / "a.ckpt.json"
    session_a = StreamingSimulation(scenario.build_simulation(), num_slots,
                                    engine="array", chunk_slots=chunk,
                                    checkpoint_every=every,
                                    checkpoint_path=path_a)
    report_a = session_a.run()
    snap_a = session_a.metrics_snapshot()

    path_b = tmp_path / "b.ckpt.json"
    session_b = StreamingSimulation(scenario.build_simulation(), num_slots,
                                    engine="array", chunk_slots=chunk,
                                    checkpoint_every=every,
                                    checkpoint_path=path_b)
    drive_to(session_b, 1000)  # die exactly at the first mark
    session_b.save_checkpoint(path_b)
    session_c = StreamingSimulation.load_checkpoint(path_b)
    report_c = session_c.run()
    snap_c = session_c.metrics_snapshot()

    assert_reports_identical(report_a, report_c)
    # The work counters are cumulative across the resume: identical to the
    # uninterrupted run's.
    for name in ("stream.chunks", "stream.slots",
                 "stream.checkpoints_saved"):
        assert snap_c["counters"][name] == snap_a["counters"][name], name
    # Only the resume marker distinguishes the two sessions.
    assert snap_c["counters"]["stream.checkpoints_resumed"] == 1
    assert "stream.checkpoints_resumed" not in snap_a["counters"]


def test_metric_state_survives_the_envelope_bit_identically(tmp_path):
    scenario = get_scenario("uniform-bernoulli")
    path = tmp_path / "mid.ckpt.json"
    session = StreamingSimulation(scenario.build_simulation(), 2000,
                                  engine="batched", chunk_slots=300)
    drive_to(session, 900)
    session.save_checkpoint(path)
    saved = session.metrics_snapshot()

    resumed = StreamingSimulation.load_checkpoint(path)
    restored = resumed.metrics_snapshot()
    # Counters and gauges round-trip exactly (modulo the resume marker);
    # the chunk timer — fully inside the envelope — does too.  (The save
    # timer is recorded after the envelope is written, so it is the one
    # timer a snapshot legitimately lags on.)
    restored_counters = dict(restored["counters"])
    assert restored_counters.pop("stream.checkpoints_resumed") == 1
    assert restored_counters == saved["counters"]
    assert restored["gauges"] == saved["gauges"]
    assert restored["timers"]["stream.chunk_s"] == \
        saved["timers"]["stream.chunk_s"]


# --------------------------------------------------------------------- #
# The progress heartbeat
# --------------------------------------------------------------------- #

def test_progress_heartbeat_reports_and_changes_nothing():
    scenario = get_scenario("uniform-bernoulli")
    beats = []
    plain = scenario.build_simulation().run_stream(2000, engine="array",
                                                   chunk_slots=250)
    observed = scenario.build_simulation().run_stream(
        2000, engine="array", chunk_slots=250,
        progress=beats.append, progress_every=2)
    assert_reports_identical(plain, observed)
    # 8 chunks, a beat every 2nd: slots 500, 1000, 1500, 2000.
    assert [beat["slot"] for beat in beats] == [500, 1000, 1500, 2000]
    final = beats[-1]
    assert final["num_slots"] == 2000
    assert final["chunks"] == 8
    assert final["elapsed_s"] > 0
    assert final["slots_per_s"] > 0


# --------------------------------------------------------------------- #
# Metrics off: nothing measurable
# --------------------------------------------------------------------- #

def test_disabled_metrics_overhead_is_within_noise():
    """``run()`` with observability off short-circuits to the engine
    dispatch; on the wide-128 stressor the wrapper must stay within noise
    of calling the dispatch directly.  The bound is deliberately loose
    (shared CI machines) — the real cost is one module-global read."""
    scenario = wide_scenario(num_slots=1500)

    def once(direct):
        sim = scenario.build_simulation()
        started = time.perf_counter()
        if direct:
            sim._run_engine(1500, True, "batched")
        else:
            sim.run(1500, engine="batched")
        return time.perf_counter() - started

    wrapped, direct = [], []
    for _ in range(5):  # interleaved, medians: robust to one noisy rep
        direct.append(once(direct=True))
        wrapped.append(once(direct=False))
    def median(samples):
        return sorted(samples)[len(samples) // 2]

    assert median(wrapped) <= median(direct) * 1.5 + 0.002
