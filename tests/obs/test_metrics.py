"""The metrics registry: publish, snapshot/restore merge, activation."""

import pytest

from repro.obs.metrics import (
    MetricsRegistry,
    disable_metrics,
    enable_metrics,
    get_metrics,
    render_metrics,
    using_metrics,
)


@pytest.fixture(autouse=True)
def _metrics_off():
    """Every test starts and ends with no active registry."""
    previous = disable_metrics()
    yield
    disable_metrics()
    if previous is not None:
        enable_metrics(previous)


class TestPublishing:
    def test_counters_accumulate(self):
        registry = MetricsRegistry()
        registry.inc("cache.hits")
        registry.inc("cache.hits")
        registry.inc("stream.slots", 500)
        assert registry.counter("cache.hits") == 2
        assert registry.counter("stream.slots") == 500
        assert registry.counter("never.written") == 0

    def test_counters_returns_a_copy(self):
        registry = MetricsRegistry()
        registry.inc("a")
        copied = registry.counters()
        copied["a"] = 99
        assert registry.counter("a") == 1

    def test_gauge_tracks_last_and_peak(self):
        registry = MetricsRegistry()
        registry.gauge("backlog", 3)
        registry.gauge("backlog", 9)
        registry.gauge("backlog", 4)
        entry = registry.snapshot()["gauges"]["backlog"]
        assert entry == {"last": 4, "peak": 9}

    def test_observe_tracks_count_total_min_max(self):
        registry = MetricsRegistry()
        for seconds in (0.2, 0.1, 0.4):
            registry.observe("chunk_s", seconds)
        entry = registry.snapshot()["timers"]["chunk_s"]
        assert entry["count"] == 3
        assert entry["total_s"] == pytest.approx(0.7)
        assert entry["min_s"] == pytest.approx(0.1)
        assert entry["max_s"] == pytest.approx(0.4)

    def test_timed_records_one_sample(self):
        registry = MetricsRegistry()
        with registry.timed("body_s"):
            pass
        entry = registry.snapshot()["timers"]["body_s"]
        assert entry["count"] == 1
        assert entry["total_s"] >= 0

    def test_timed_records_even_on_exception(self):
        registry = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with registry.timed("body_s"):
                raise RuntimeError("boom")
        assert registry.snapshot()["timers"]["body_s"]["count"] == 1

    def test_bool_means_nonempty(self):
        registry = MetricsRegistry()
        assert not registry
        registry.inc("a")
        assert registry

    def test_clear_drops_everything(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.gauge("g", 1)
        registry.observe("t", 0.1)
        registry.clear()
        assert not registry


class TestSnapshotRestore:
    def test_snapshot_round_trips_bit_identically(self):
        registry = MetricsRegistry()
        registry.inc("stream.chunks", 7)
        registry.gauge("backlog", 5)
        registry.gauge("backlog", 2)
        registry.observe("chunk_s", 0.25)
        snapshot = registry.snapshot()
        fresh = MetricsRegistry()
        fresh.restore(snapshot)
        assert fresh.snapshot() == snapshot

    def test_snapshot_is_detached_from_the_registry(self):
        registry = MetricsRegistry()
        registry.inc("a")
        snapshot = registry.snapshot()
        registry.inc("a")
        assert snapshot["counters"]["a"] == 1

    def test_restore_merges_counters_by_addition(self):
        registry = MetricsRegistry()
        registry.inc("stream.slots", 100)
        registry.restore({"counters": {"stream.slots": 50, "new": 1}})
        assert registry.counter("stream.slots") == 150
        assert registry.counter("new") == 1

    def test_restore_merges_gauges_last_wins_peak_max(self):
        registry = MetricsRegistry()
        registry.gauge("backlog", 10)
        registry.restore({"gauges": {"backlog": {"last": 4, "peak": 6}}})
        assert registry.snapshot()["gauges"]["backlog"] == \
            {"last": 4, "peak": 10}

    def test_restore_merges_timers_field_wise(self):
        registry = MetricsRegistry()
        registry.observe("chunk_s", 0.2)
        registry.restore({"timers": {"chunk_s": {
            "count": 2, "total_s": 0.5, "min_s": 0.1, "max_s": 0.4}}})
        entry = registry.snapshot()["timers"]["chunk_s"]
        assert entry["count"] == 3
        assert entry["total_s"] == pytest.approx(0.7)
        assert entry["min_s"] == pytest.approx(0.1)
        assert entry["max_s"] == pytest.approx(0.4)

    def test_restore_empty_snapshot_is_a_no_op(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.restore({})
        assert registry.counter("a") == 1


class TestActivation:
    def test_disabled_by_default(self):
        assert get_metrics() is None

    def test_enable_disable(self):
        registry = enable_metrics()
        assert get_metrics() is registry
        assert disable_metrics() is registry
        assert get_metrics() is None

    def test_enable_accepts_an_existing_registry(self):
        mine = MetricsRegistry()
        assert enable_metrics(mine) is mine
        assert get_metrics() is mine

    def test_using_metrics_restores_the_previous_registry(self):
        outer = enable_metrics()
        with using_metrics() as inner:
            assert get_metrics() is inner
            assert inner is not outer
        assert get_metrics() is outer

    def test_using_metrics_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with using_metrics():
                raise RuntimeError("boom")
        assert get_metrics() is None


class TestRendering:
    def test_empty_snapshot_says_so(self):
        text = render_metrics(MetricsRegistry().snapshot())
        assert "== metrics ==" in text
        assert "(no metrics recorded)" in text

    def test_rendered_lines_are_sorted_and_complete(self):
        registry = MetricsRegistry()
        registry.inc("b.second", 2)
        registry.inc("a.first", 1)
        registry.gauge("backlog", 5)
        registry.observe("chunk_s", 0.25)
        text = render_metrics(registry.snapshot(), "run metrics")
        assert text.splitlines()[0] == "== run metrics =="
        assert text.index("a.first = 1") < text.index("b.second = 2")
        assert "backlog last=5 peak=5" in text
        assert "chunk_s count=1" in text
