"""The NDJSON trace writer, the module-level emit hook and the inspector."""

import json

import pytest

from repro.obs.trace import (
    TraceWriter,
    emit,
    get_trace,
    read_events,
    render_trace_summary,
    set_trace,
    summarize_trace,
    using_trace,
)


@pytest.fixture(autouse=True)
def _trace_off():
    previous = set_trace(None)
    yield
    set_trace(previous)


def read_lines(path):
    return [json.loads(line) for line in
            path.read_text(encoding="utf-8").splitlines()]


class TestWriter:
    def test_open_and_close_frame_the_file(self, tmp_path):
        path = tmp_path / "t.ndjson"
        with TraceWriter(path) as writer:
            writer.emit("chunk", slots=500)
        events = read_lines(path)
        assert [e["event"] for e in events] == \
            ["trace_open", "chunk", "trace_close"]
        assert events[1]["slots"] == 500
        # Every event carries both clocks.
        assert all("ts" in e and "elapsed_s" in e for e in events)
        # trace_close reports how many lines preceded it.
        assert events[-1]["events"] == 2

    def test_events_are_flushed_per_line(self, tmp_path):
        path = tmp_path / "t.ndjson"
        writer = TraceWriter(path)
        writer.emit("chunk", slots=1)
        # Readable before close — a crashed run's trace is usable.
        assert [e["event"] for e in read_lines(path)] == \
            ["trace_open", "chunk"]
        writer.close()

    def test_close_is_idempotent(self, tmp_path):
        writer = TraceWriter(tmp_path / "t.ndjson")
        writer.close()
        writer.close()
        writer.emit("chunk")  # silently dropped after close
        assert [e["event"] for e in read_lines(tmp_path / "t.ndjson")] == \
            ["trace_open", "trace_close"]

    def test_non_json_fields_are_stringified(self, tmp_path):
        path = tmp_path / "t.ndjson"
        with TraceWriter(path) as writer:
            writer.emit("checkpoint_saved", path=path)
        assert read_lines(path)[1]["path"] == str(path)


class TestCurrentWriter:
    def test_emit_without_a_writer_is_a_no_op(self):
        assert get_trace() is None
        emit("chunk", slots=1)  # must not raise

    def test_using_trace_installs_and_restores(self, tmp_path):
        with TraceWriter(tmp_path / "t.ndjson") as writer:
            with using_trace(writer):
                assert get_trace() is writer
                emit("chunk", slots=7)
            assert get_trace() is None
        events = read_lines(tmp_path / "t.ndjson")
        assert events[1] == {**events[1], "event": "chunk", "slots": 7}

    def test_using_trace_does_not_close_the_writer(self, tmp_path):
        writer = TraceWriter(tmp_path / "t.ndjson")
        with using_trace(writer):
            pass
        writer.emit("chunk")  # still open
        writer.close()


class TestInspector:
    def write_trace(self, path, events):
        with path.open("w", encoding="utf-8") as handle:
            for index, (event, fields) in enumerate(events):
                record = {"ts": 1000.0 + index, "elapsed_s": float(index),
                          "event": event, **fields}
                handle.write(json.dumps(record) + "\n")

    def test_summary_aggregates_the_headline_numbers(self, tmp_path):
        path = tmp_path / "t.ndjson"
        self.write_trace(path, [
            ("trace_open", {}),
            ("chunk", {"slots": 500, "duration_s": 0.1}),
            ("chunk", {"slots": 300, "duration_s": 0.1}),
            ("checkpoint_saved", {"duration_s": 0.02}),
            ("checkpoint_resumed", {"slot": 500}),
            ("job_cached", {}),
            ("job_dispatched", {}),
            ("run_end", {"slots": 800}),
            ("fuzz_divergence", {"index": 3, "leg": "array",
                                 "field": "latency"}),
            ("trace_close", {}),
        ])
        summary = summarize_trace(path)
        assert summary["events"] == 10
        assert summary["by_type"]["chunk"] == 2
        assert summary["span_s"] == pytest.approx(9.0)
        assert summary["chunk_slots_total"] == 800
        assert summary["chunk_kslots_per_s"] == pytest.approx(4.0)
        assert summary["checkpoints_saved"] == 1
        assert summary["checkpoints_resumed"] == 1
        assert summary["resumed_from_slot"] == 500
        assert summary["jobs_cached"] == 1
        assert summary["jobs_dispatched"] == 1
        assert summary["runs"] == 1
        assert summary["slots_simulated"] == 800
        assert summary["fuzz_divergences"] == [
            {"index": 3, "leg": "array", "field": "latency"}]

    def test_render_names_every_section(self, tmp_path):
        path = tmp_path / "t.ndjson"
        self.write_trace(path, [
            ("trace_open", {}),
            ("chunk", {"slots": 500, "duration_s": 0.1}),
            ("fuzz_divergence", {"index": 3, "leg": "array",
                                 "field": "latency"}),
            ("trace_close", {}),
        ])
        text = render_trace_summary(summarize_trace(path))
        assert "4 events" in text
        assert "chunks: 1 windows, 500 slots" in text
        assert "DIVERGENCE: case 3 leg array (latency)" in text

    def test_truncated_final_line_is_tolerated(self, tmp_path):
        path = tmp_path / "t.ndjson"
        self.write_trace(path, [("trace_open", {}),
                                ("chunk", {"slots": 10, "duration_s": 0.1})])
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"ts": 1002.0, "elapsed_s"')  # writer died here
        events = read_events(path)
        assert [e["event"] for e in events] == ["trace_open", "chunk"]

    def test_valid_json_that_is_not_an_event_is_an_error(self, tmp_path):
        path = tmp_path / "t.ndjson"
        path.write_text('{"no_event_field": 1}\n', encoding="utf-8")
        with pytest.raises(ValueError, match="not a trace event"):
            read_events(path)

    def test_missing_file_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            read_events(tmp_path / "nope.ndjson")

    def test_empty_trace_summarizes_to_zero(self, tmp_path):
        path = tmp_path / "t.ndjson"
        path.write_text("", encoding="utf-8")
        summary = summarize_trace(path)
        assert summary["events"] == 0
        assert summary["span_s"] == 0.0
