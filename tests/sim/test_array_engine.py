"""Acceptance tests: the struct-of-arrays engine is bit-identical to the
object-model loops on every registered scenario and every edge mode."""

import pytest

from repro.core.buffer import CFDSPacketBuffer
from repro.core.config import CFDSConfig
from repro.errors import ConfigurationError, StaleSimulationError
from repro.mma.mdqf import MDQF
from repro.rads.buffer import RADSPacketBuffer
from repro.rads.config import RADSConfig
from repro.sim.engine import ClosedLoopSimulation
from repro.traffic.arbiters import OldestCellArbiter, RandomArbiter, TraceArbiter
from repro.traffic.arrivals import BernoulliArrivals, BurstyArrivals, TraceArrivals
from repro.workloads import all_scenarios
from repro.workloads.registry import scenario_names


def assert_reports_identical(left, right):
    assert left.throughput == right.throughput
    assert left.latency == right.latency
    assert left.buffer_result == right.buffer_result


def run_both(make_sim, num_slots, drain=True):
    """Run a freshly built simulation on the reference loop and the array
    engine and return both reports."""
    reference = make_sim().run(num_slots, drain=drain, engine="reference")
    array = make_sim().run(num_slots, drain=drain, engine="array")
    return reference, array


# --------------------------------------------------------------------- #
# The registered suite (10 scenarios spanning both schemes, every arbiter
# family and every stochastic arrival process).
# --------------------------------------------------------------------- #

@pytest.mark.parametrize("name", scenario_names())
def test_array_engine_identical_on_registered_scenarios(name):
    scenario = next(s for s in all_scenarios() if s.name == name)
    reference = scenario.run(engine="reference", record_trace=True)
    array = scenario.run(engine="array", record_trace=True)
    assert_reports_identical(reference, array)
    assert reference.trace.events == array.trace.events


@pytest.mark.parametrize("name", scenario_names())
def test_array_engine_identical_without_drain(name):
    scenario = next(s for s in all_scenarios() if s.name == name)
    reference = scenario.run(engine="reference", num_slots=600)
    array = scenario.run(engine="array", num_slots=600)
    assert_reports_identical(reference, array)


# --------------------------------------------------------------------- #
# Edge modes: drain-only, fill-only, zero slots, replay.
# --------------------------------------------------------------------- #

@pytest.mark.parametrize("scheme", ["rads", "cfds"])
def test_fill_only_run(scheme):
    """No arbiter: the buffer only fills; both engines agree."""
    def make_sim():
        buffer = _build_buffer(scheme)
        return ClosedLoopSimulation(
            buffer, BernoulliArrivals(8, load=0.9, seed=21), None)

    reference, array = run_both(make_sim, 800)
    assert_reports_identical(reference, array)
    assert reference.throughput.arrivals > 0
    assert reference.throughput.departures == 0


@pytest.mark.parametrize("scheme", ["rads", "cfds"])
def test_drain_only_run(scheme):
    """No arrivals: idle slots only; both engines agree."""
    def make_sim():
        buffer = _build_buffer(scheme)
        return ClosedLoopSimulation(buffer, None, OldestCellArbiter(8))

    reference, array = run_both(make_sim, 500)
    assert_reports_identical(reference, array)
    assert reference.throughput.arrivals == 0


@pytest.mark.parametrize("scheme", ["rads", "cfds"])
@pytest.mark.parametrize("num_slots", [0, 1])
def test_degenerate_slot_counts(scheme, num_slots):
    def make_sim():
        buffer = _build_buffer(scheme)
        return ClosedLoopSimulation(
            buffer, BernoulliArrivals(8, load=0.5, seed=3), RandomArbiter(8, seed=4))

    reference, array = run_both(make_sim, num_slots)
    assert_reports_identical(reference, array)


def test_trace_replay_cross_engine():
    """A trace recorded on the array engine replays bit-identically through
    the reference loop, and vice versa."""
    scenario = next(s for s in all_scenarios() if s.name == "bursty-trains")
    recorded = scenario.run(engine="array", record_trace=True)

    def replay(engine):
        trace = recorded.trace
        sim = ClosedLoopSimulation(scenario.build_buffer(),
                                   TraceArrivals(trace.arrivals()),
                                   TraceArbiter(trace.requests()))
        return sim.run(len(trace), engine=engine)

    replay_reference = replay("reference")
    replay_array = replay("array")
    assert_reports_identical(replay_reference, replay_array)
    assert replay_reference.throughput == recorded.throughput
    assert replay_reference.latency == recorded.latency


# --------------------------------------------------------------------- #
# Paths off the specialised fast lanes: custom MMA, lossy configurations.
# --------------------------------------------------------------------- #

def test_custom_head_mma_uses_generic_path():
    """A non-ECQF head MMA falls back to invoking the policy object with the
    object model's exact views — still bit-identical."""
    def make_sim(mma=None):
        config = RADSConfig(num_queues=6, granularity=3, strict=False)
        buffer = RADSPacketBuffer(config, head_mma=MDQF())
        return ClosedLoopSimulation(
            buffer, BurstyArrivals(6, mean_burst_cells=10, load=0.9, seed=5),
            RandomArbiter(6, load=0.8, seed=6))

    reference, array = run_both(make_sim, 1500)
    assert_reports_identical(reference, array)


def test_rads_nonstrict_dram_overflow_drops():
    """A tiny non-strict DRAM forces the eviction-drop path; drop accounting
    must match exactly."""
    def make_sim():
        config = RADSConfig(num_queues=4, granularity=4, strict=False,
                            dram_cells=16)
        buffer = RADSPacketBuffer(config)
        return ClosedLoopSimulation(
            buffer, BernoulliArrivals(4, load=1.0, seed=9),
            RandomArbiter(4, load=0.2, seed=10))

    reference, array = run_both(make_sim, 1200)
    assert_reports_identical(reference, array)
    assert reference.throughput.drops > 0


def test_cfds_static_groups_without_renaming():
    """Renaming disabled with finite bank groups exercises the static
    placement path (including group-full drops)."""
    def make_sim():
        config = CFDSConfig(num_queues=8, dram_access_slots=8, granularity=2,
                            num_banks=32, strict=False)
        buffer = CFDSPacketBuffer(config, use_renaming=False,
                                  group_capacity_cells=8)
        return ClosedLoopSimulation(
            buffer, BurstyArrivals(8, mean_burst_cells=20, load=0.95, seed=11),
            RandomArbiter(8, load=0.3, seed=12))

    reference, array = run_both(make_sim, 1500)
    assert_reports_identical(reference, array)
    assert reference.throughput.drops > 0


def test_cfds_renaming_with_group_capacity():
    """Renaming enabled with finite groups: the borrowed renaming table makes
    identical placement decisions."""
    def make_sim():
        config = CFDSConfig(num_queues=8, dram_access_slots=8, granularity=2,
                            num_banks=32, strict=False)
        buffer = CFDSPacketBuffer(config, use_renaming=True,
                                  group_capacity_cells=64)
        return ClosedLoopSimulation(
            buffer, BurstyArrivals(8, mean_burst_cells=20, load=0.95, seed=13),
            RandomArbiter(8, load=0.5, seed=14))

    reference, array = run_both(make_sim, 1500)
    assert_reports_identical(reference, array)


# --------------------------------------------------------------------- #
# Engine selection plumbing.
# --------------------------------------------------------------------- #

def test_unknown_engine_rejected():
    sim = ClosedLoopSimulation(_build_buffer("rads"))
    with pytest.raises(ConfigurationError, match="unknown engine"):
        sim.run(10, engine="warp")


def test_array_engine_requires_fresh_buffer():
    buffer = _build_buffer("rads")
    buffer.step(None, None)
    sim = ClosedLoopSimulation(buffer)
    with pytest.raises(StaleSimulationError, match="freshly built"):
        sim.run(10, engine="array")


@pytest.mark.parametrize("scheme", ["rads", "cfds"])
def test_array_engine_rejects_second_run(scheme):
    """The engine never steps the buffer, so a second run on the same
    simulation must be rejected by the accumulated-stats guard (it would
    double-count throughput and replay stale scheduler state)."""
    sim = ClosedLoopSimulation(_build_buffer(scheme),
                               BernoulliArrivals(8, load=0.5, seed=3),
                               RandomArbiter(8, seed=4))
    sim.run(200, engine="array")
    with pytest.raises(StaleSimulationError, match="freshly built"):
        sim.run(200, engine="array")


def test_array_engine_rejects_unknown_buffer_types():
    class NotABuffer:
        slot = 0

    sim = ClosedLoopSimulation(NotABuffer())
    with pytest.raises(ConfigurationError, match="array engine supports"):
        sim.run(10, engine="array")


def test_negative_slots_rejected():
    sim = ClosedLoopSimulation(_build_buffer("rads"))
    with pytest.raises(ConfigurationError, match="non-negative"):
        sim.run(-1, engine="array")


def test_engine_argument_overrides_fast_path_flag():
    """engine="reference" with fast_path=True must still use the reference
    loop (observable through report equality with an explicit legacy run)."""
    scenario = next(s for s in all_scenarios() if s.name == "uniform-bernoulli")
    via_engine = scenario.run(engine="reference", num_slots=400)
    via_flag = scenario.run(fast_path=False, num_slots=400)
    assert_reports_identical(via_engine, via_flag)


def _build_buffer(scheme):
    if scheme == "rads":
        return RADSPacketBuffer(RADSConfig(num_queues=8, granularity=4))
    return CFDSPacketBuffer(CFDSConfig(num_queues=8, dram_access_slots=8,
                                       granularity=2, num_banks=32))
