"""The streaming path: chunk invariance, warmup, checkpoint/resume, memory.

The contract under test (ISSUE 5):

* a streamed run with ``warmup_slots=0`` is bit-identical to the monolithic
  run on the same engine, for **every** chunk size;
* the warmup reset lands at exactly ``warmup_slots`` regardless of chunking,
  so warmup reports are chunk- and engine-invariant;
* a run checkpointed mid-way and resumed from the snapshot file reproduces
  the uninterrupted run bit for bit, on all three engines and both schemes;
* peak memory is a function of ``chunk_slots``, never of ``num_slots`` —
  the arrival process is only ever asked for chunk-sized windows.
"""

import base64
import hashlib
import json
import os

import pytest

from repro.errors import CheckpointError, ConfigurationError
from repro.sim.engine import ClosedLoopSimulation
from repro.sim.streaming import (
    CHECKPOINT_VERSION,
    StreamingSimulation,
    read_checkpoint,
    resume_stream,
    run_stream,
)
from repro.traffic.arbiters import LongestQueueArbiter
from repro.traffic.arrivals import BernoulliArrivals, TraceArrivals
from repro.workloads.registry import get_scenario

ENGINES = ("reference", "batched", "array")
#: One RADS and one CFDS registered scenario, as the acceptance criteria ask.
SCHEME_SCENARIOS = ("uniform-bernoulli", "markov-onoff")


def assert_reports_identical(left, right, context=""):
    assert left.throughput == right.throughput, context
    assert left.latency == right.latency, context
    assert left.buffer_result == right.buffer_result, context


def drive_to(session, stop_slot):
    """Manually advance a session to ``stop_slot`` (simulating the chunks an
    interrupted run would have completed before dying)."""
    arrivals = session.sim.arrivals
    while session.slot < stop_slot:
        count = min(session.chunk_slots, stop_slot - session.slot)
        if arrivals is not None:
            window = arrivals.arrivals_slice(session.slot, count)
            plan = window if isinstance(window, list) else list(window)
        else:
            plan = [None] * count
        session._execute(plan)


# --------------------------------------------------------------------- #
# Chunk invariance
# --------------------------------------------------------------------- #

@pytest.mark.parametrize("scenario_name", SCHEME_SCENARIOS)
@pytest.mark.parametrize("engine", ENGINES)
def test_streamed_equals_monolithic(scenario_name, engine):
    scenario = get_scenario(scenario_name)
    monolithic = scenario.build_simulation().run(scenario.num_slots,
                                                 engine=engine)
    for chunk in (137, 1000, scenario.num_slots, 10 * scenario.num_slots):
        streamed = scenario.build_simulation().run_stream(
            scenario.num_slots, engine=engine, chunk_slots=chunk)
        assert_reports_identical(streamed, monolithic,
                                 f"{scenario_name}/{engine}/chunk={chunk}")


@pytest.mark.parametrize("engine", ENGINES)
def test_streamed_drain_only_and_no_drain(engine):
    scenario = get_scenario("uniform-bernoulli")
    monolithic = scenario.build_simulation().run(scenario.num_slots,
                                                 drain=False, engine=engine)
    streamed = StreamingSimulation(scenario.build_simulation(),
                                   scenario.num_slots, engine=engine,
                                   drain=False, chunk_slots=333).run()
    assert_reports_identical(streamed, monolithic, engine)


def test_streamed_zero_slots():
    scenario = get_scenario("uniform-bernoulli")
    report = scenario.build_simulation().run_stream(0, engine="batched")
    assert report.throughput.arrivals == 0


# --------------------------------------------------------------------- #
# Warmup
# --------------------------------------------------------------------- #

@pytest.mark.parametrize("scenario_name", SCHEME_SCENARIOS)
def test_warmup_is_chunk_and_engine_invariant(scenario_name):
    scenario = get_scenario(scenario_name)
    warmup = scenario.num_slots // 3
    reports = [
        scenario.build_simulation().run_stream(
            scenario.num_slots, engine=engine, chunk_slots=chunk,
            warmup_slots=warmup)
        for engine, chunk in (("reference", 97), ("batched", 4096),
                              ("array", 700), ("array", 131072))
    ]
    for report in reports[1:]:
        assert_reports_identical(report, reports[0], scenario_name)


def test_warmup_discards_the_transient():
    scenario = get_scenario("uniform-bernoulli")
    full = scenario.build_simulation().run_stream(scenario.num_slots,
                                                  engine="array")
    warmed = scenario.build_simulation().run_stream(
        scenario.num_slots, engine="array",
        warmup_slots=scenario.num_slots // 2)
    # Measured window shrinks by exactly the warmup; drain slots unchanged.
    assert (full.throughput.slots - warmed.throughput.slots
            == scenario.num_slots // 2)
    assert warmed.throughput.arrivals < full.throughput.arrivals
    assert warmed.latency.count < full.latency.count
    # Engineering counters still cover the whole run.
    assert warmed.buffer_result.cells_in == full.buffer_result.cells_in
    assert (warmed.buffer_result.slots_simulated
            == full.buffer_result.slots_simulated)


def test_warmup_validation():
    scenario = get_scenario("uniform-bernoulli")
    sim = scenario.build_simulation()
    with pytest.raises(ConfigurationError, match="cannot exceed"):
        StreamingSimulation(sim, 100, warmup_slots=101)
    with pytest.raises(ConfigurationError, match="non-negative"):
        StreamingSimulation(sim, 100, warmup_slots=-1)


def test_warmup_equal_to_num_slots_measures_only_the_drain():
    scenario = get_scenario("uniform-bernoulli")
    report = scenario.build_simulation().run_stream(
        1000, engine="batched", warmup_slots=1000, chunk_slots=64)
    assert report.throughput.arrivals == 0
    # Cells still in flight at the boundary depart during the drain window.
    assert report.throughput.slots == report.buffer_result.slots_simulated - 1000


# --------------------------------------------------------------------- #
# Checkpoint / resume
# --------------------------------------------------------------------- #

@pytest.mark.parametrize("scenario_name", SCHEME_SCENARIOS)
@pytest.mark.parametrize("engine", ENGINES)
def test_checkpoint_resume_bit_identical(scenario_name, engine, tmp_path):
    scenario = get_scenario(scenario_name)
    uninterrupted = scenario.build_simulation().run_stream(
        scenario.num_slots, engine=engine, chunk_slots=500)
    path = tmp_path / "run.ckpt.json"
    session = StreamingSimulation(scenario.build_simulation(),
                                  scenario.num_slots, engine=engine,
                                  chunk_slots=500)
    drive_to(session, scenario.num_slots * 2 // 5)
    session.save_checkpoint(path)
    resumed = resume_stream(path)
    assert_reports_identical(resumed, uninterrupted,
                             f"{scenario_name}/{engine}")


def test_checkpoint_resume_with_warmup_pending(tmp_path):
    """A snapshot taken *inside* the warmup window must still reset the
    measurement at the right boundary after resuming."""
    scenario = get_scenario("uniform-bernoulli")
    warmup = 1200
    uninterrupted = scenario.build_simulation().run_stream(
        scenario.num_slots, engine="array", chunk_slots=256,
        warmup_slots=warmup)
    path = tmp_path / "warm.ckpt.json"
    session = StreamingSimulation(scenario.build_simulation(),
                                  scenario.num_slots, engine="array",
                                  chunk_slots=256, warmup_slots=warmup)
    drive_to(session, 512)  # still inside the warmup window
    session.save_checkpoint(path)
    resumed = resume_stream(path)
    assert_reports_identical(resumed, uninterrupted)


def test_run_writes_checkpoints_at_marks(tmp_path):
    scenario = get_scenario("uniform-bernoulli")
    path = tmp_path / "marks.ckpt.json"
    report = scenario.build_simulation().run_stream(
        scenario.num_slots, engine="batched", chunk_slots=300,
        checkpoint_every=1000, checkpoint_path=path)
    assert path.exists()
    meta = read_checkpoint(path)
    # The last mark strictly inside the run (marks at num_slots are skipped:
    # the run completes instead).
    last_mark = (scenario.num_slots - 1) // 1000 * 1000
    assert meta["slot"] == last_mark
    assert meta["num_slots"] == scenario.num_slots
    assert meta["version"] == CHECKPOINT_VERSION
    # And the checkpointed run's own report is unaffected by snapshotting.
    monolithic = scenario.build_simulation().run(scenario.num_slots,
                                                 engine="batched")
    assert_reports_identical(report, monolithic)


def test_resume_continues_checkpointing(tmp_path):
    scenario = get_scenario("uniform-bernoulli")
    path = tmp_path / "cont.ckpt.json"
    session = StreamingSimulation(scenario.build_simulation(),
                                  scenario.num_slots, engine="batched",
                                  chunk_slots=500, checkpoint_every=700,
                                  checkpoint_path=path)
    drive_to(session, 700)
    session.save_checkpoint(path)
    resume_stream(path)
    # The resumed run rewrote later marks into the same file.
    assert read_checkpoint(path)["slot"] > 700


def test_checkpoint_requires_path():
    scenario = get_scenario("uniform-bernoulli")
    with pytest.raises(ConfigurationError, match="checkpoint_path"):
        StreamingSimulation(scenario.build_simulation(), 100,
                            checkpoint_every=10)


def test_read_checkpoint_rejects_garbage(tmp_path):
    missing = tmp_path / "nope.ckpt.json"
    with pytest.raises(CheckpointError, match="cannot read"):
        read_checkpoint(missing)
    not_json = tmp_path / "garbage.ckpt.json"
    not_json.write_text("{truncated", encoding="utf-8")
    with pytest.raises(CheckpointError, match="not valid JSON"):
        read_checkpoint(not_json)
    wrong_format = tmp_path / "other.json"
    wrong_format.write_text(json.dumps({"format": "something-else"}),
                            encoding="utf-8")
    with pytest.raises(CheckpointError, match="not a repro streaming"):
        read_checkpoint(wrong_format)


def test_checkpoint_version_and_digest_guards(tmp_path):
    scenario = get_scenario("uniform-bernoulli")
    path = tmp_path / "run.ckpt.json"
    session = StreamingSimulation(scenario.build_simulation(),
                                  scenario.num_slots, engine="batched",
                                  chunk_slots=500)
    drive_to(session, 1000)
    session.save_checkpoint(path)

    document = json.loads(path.read_text(encoding="utf-8"))
    future = dict(document, version=CHECKPOINT_VERSION + 1)
    path.write_text(json.dumps(future), encoding="utf-8")
    with pytest.raises(CheckpointError, match="format version"):
        resume_stream(path)

    corrupt = dict(document)
    corrupt["state_b64"] = corrupt["state_b64"][:-8] + "AAAAAAAA"
    path.write_text(json.dumps(corrupt), encoding="utf-8")
    with pytest.raises(CheckpointError, match="digest mismatch"):
        resume_stream(path)

    missing_field = dict(document)
    del missing_field["engine"]
    path.write_text(json.dumps(missing_field), encoding="utf-8")
    with pytest.raises(CheckpointError, match="missing field"):
        resume_stream(path)


def test_corrupt_checkpoints_always_fail_cleanly(tmp_path):
    """Every on-disk corruption mode surfaces as a CheckpointError with a
    message naming the file — never a raw KeyError/binascii.Error/pickle
    exception from the decode internals."""
    scenario = get_scenario("uniform-bernoulli")
    path = tmp_path / "run.ckpt.json"
    session = StreamingSimulation(scenario.build_simulation(),
                                  scenario.num_slots, engine="batched",
                                  chunk_slots=500)
    drive_to(session, 1000)
    session.save_checkpoint(path)
    text = path.read_text(encoding="utf-8")
    document = json.loads(text)

    # A write that died halfway: the envelope itself is cut mid-document.
    path.write_text(text[:len(text) // 2], encoding="utf-8")
    with pytest.raises(CheckpointError, match="not valid JSON"):
        resume_stream(path)

    # The state payload is not even base64 (would be binascii.Error raw).
    bad_b64 = dict(document, state_b64="!!! not base64 !!!")
    path.write_text(json.dumps(bad_b64), encoding="utf-8")
    with pytest.raises(CheckpointError, match="not valid base64"):
        resume_stream(path)

    # The state payload has the wrong JSON type (would be TypeError raw).
    bad_type = dict(document, state_b64=12345)
    path.write_text(json.dumps(bad_type), encoding="utf-8")
    with pytest.raises(CheckpointError):
        resume_stream(path)

    # Digest-consistent garbage: valid base64, matching sha256, but the
    # blob is not a pickle (would be UnpicklingError raw).
    blob = b"this is not a pickle stream"
    forged = dict(document,
                  state_b64=base64.b64encode(blob).decode("ascii"),
                  sha256=hashlib.sha256(blob).hexdigest())
    path.write_text(json.dumps(forged), encoding="utf-8")
    with pytest.raises(CheckpointError, match="cannot be unpickled"):
        resume_stream(path)


def test_save_checkpoint_is_atomic(tmp_path):
    """No ``*.tmp.*`` residue next to a written snapshot."""
    scenario = get_scenario("uniform-bernoulli")
    path = tmp_path / "atomic.ckpt.json"
    session = StreamingSimulation(scenario.build_simulation(),
                                  scenario.num_slots, engine="array",
                                  chunk_slots=500)
    drive_to(session, 500)
    session.save_checkpoint(path)
    assert [p.name for p in tmp_path.iterdir()] == ["atomic.ckpt.json"]


# --------------------------------------------------------------------- #
# Bounded memory
# --------------------------------------------------------------------- #

class WindowSpy(BernoulliArrivals):
    """Records every window the engine asks for, to prove chunking."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.windows = []

    def arrivals_slice(self, start_slot, num_slots):
        self.windows.append((start_slot, num_slots))
        return super().arrivals_slice(start_slot, num_slots)


@pytest.mark.parametrize("engine", ENGINES)
def test_peak_memory_is_chunk_bounded_not_horizon_bounded(engine):
    """The arrival process is only ever asked for chunk-sized windows, and
    the windows tile the horizon exactly — no engine materialises an
    O(num_slots) plan on the streaming path."""
    num_slots, chunk = 10_000, 512
    spy = WindowSpy(num_queues=4, load=0.8, seed=9)
    sim = ClosedLoopSimulation(
        get_scenario("uniform-bernoulli").build_buffer(), spy,
        LongestQueueArbiter(4))
    run_stream(sim, num_slots, engine=engine, chunk_slots=chunk)
    assert max(count for _, count in spy.windows) <= chunk
    assert sum(count for _, count in spy.windows) == num_slots
    starts = [start for start, _ in spy.windows]
    assert starts == sorted(starts)
    assert spy.windows[0][0] == 0


def test_checkpoint_size_is_horizon_independent(tmp_path):
    """Snapshot size reflects live state (queues, histogram), not the
    horizon: checkpointing at the same fill level of a 4x longer run must
    not grow the file materially."""
    scenario = get_scenario("uniform-bernoulli")
    sizes = {}
    for label, num_slots in (("short", 4000), ("long", 16000)):
        path = tmp_path / f"{label}.ckpt.json"
        session = StreamingSimulation(scenario.build_simulation(),
                                      num_slots, engine="array",
                                      chunk_slots=500)
        drive_to(session, 2000)
        session.save_checkpoint(path)
        sizes[label] = os.path.getsize(path)
    assert sizes["long"] <= sizes["short"] * 1.5


# --------------------------------------------------------------------- #
# Open-ended (feed) sessions
# --------------------------------------------------------------------- #

def test_feed_session_matches_trace_arrivals_run():
    pattern = BernoulliArrivals(num_queues=4, load=0.7, seed=21).arrivals(3000)
    scenario = get_scenario("uniform-bernoulli")

    monolithic = ClosedLoopSimulation(
        scenario.build_buffer(), TraceArrivals(pattern),
        LongestQueueArbiter(4)).run(len(pattern), engine="array")

    session = StreamingSimulation(
        ClosedLoopSimulation(scenario.build_buffer(), None,
                             LongestQueueArbiter(4)),
        None, engine="array")
    for start in range(0, len(pattern), 271):
        session.feed(pattern[start:start + 271])
    streamed = session.finish()
    assert_reports_identical(streamed, monolithic)


def test_feed_rejects_sized_sessions_and_vice_versa():
    scenario = get_scenario("uniform-bernoulli")
    sized = StreamingSimulation(scenario.build_simulation(), 100)
    with pytest.raises(ConfigurationError, match="open-ended"):
        sized.feed([None] * 10)
    open_ended = StreamingSimulation(scenario.build_simulation(), None)
    with pytest.raises(ConfigurationError, match="num_slots"):
        open_ended.run()


def test_finish_guards():
    scenario = get_scenario("uniform-bernoulli")
    session = StreamingSimulation(scenario.build_simulation(), 1000,
                                  chunk_slots=100)
    with pytest.raises(ConfigurationError, match="cannot finish"):
        session.finish()
    under_warmed = StreamingSimulation(scenario.build_simulation(), None,
                                       warmup_slots=50)
    under_warmed.feed([None] * 10)
    with pytest.raises(ConfigurationError, match="warmup"):
        under_warmed.finish()


def test_finished_session_rejects_further_use():
    from repro.errors import StaleSimulationError

    scenario = get_scenario("uniform-bernoulli")
    session = StreamingSimulation(scenario.build_simulation(), 200,
                                  chunk_slots=100)
    session.run()
    with pytest.raises(StaleSimulationError, match="already produced"):
        session._span([None])


@pytest.mark.parametrize("engine", ENGINES)
def test_double_finish_raises_on_every_engine(engine):
    """Without the guard the non-core path would silently re-run the drain
    window and report inflated slot counts."""
    from repro.errors import StaleSimulationError

    scenario = get_scenario("uniform-bernoulli")
    session = StreamingSimulation(scenario.build_simulation(), 200,
                                  engine=engine, chunk_slots=100)
    session.run()
    with pytest.raises(StaleSimulationError, match="already produced"):
        session.finish()


# --------------------------------------------------------------------- #
# Scenario / job-spec integration
# --------------------------------------------------------------------- #

def test_run_scenario_spec_streamed_matches_monolithic(tmp_path):
    from repro.workloads.scenario import run_scenario_spec

    scenario = get_scenario("uniform-bernoulli")
    plain = run_scenario_spec(scenario.to_spec(), engine="array")
    streamed = run_scenario_spec(scenario.to_spec(), engine="array",
                                 stream=True, chunk_slots=700)
    assert streamed == plain

    # With a checkpoint_dir the run is crash-resumable and cleans up after
    # itself once complete.
    resumable = run_scenario_spec(scenario.to_spec(), engine="array",
                                  stream=True, chunk_slots=700,
                                  checkpoint_every=800,
                                  checkpoint_dir=str(tmp_path))
    assert resumable == plain
    assert list(tmp_path.iterdir()) == []


def test_run_scenario_spec_resumes_from_existing_checkpoint(tmp_path):
    """A snapshot left behind by a crashed worker is picked up and finished
    instead of restarting from slot 0."""
    import hashlib

    from repro.workloads.scenario import run_scenario_spec

    scenario = get_scenario("uniform-bernoulli")
    plain = run_scenario_spec(scenario.to_spec(), engine="array")

    # Reproduce the path run_scenario_spec derives for these kwargs.
    signature = json.dumps(
        {"spec": scenario.to_spec(), "engine": "array",
         "chunk_slots": 700, "warmup_slots": 0},
        sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(signature.encode("utf-8")).hexdigest()[:16]
    path = tmp_path / f"{scenario.name}-{digest}.ckpt.json"

    session = StreamingSimulation(scenario.build_simulation(),
                                  scenario.num_slots, engine="array",
                                  chunk_slots=700)
    drive_to(session, 1400)
    session.save_checkpoint(path)

    resumed = run_scenario_spec(scenario.to_spec(), engine="array",
                                stream=True, chunk_slots=700,
                                checkpoint_every=800,
                                checkpoint_dir=str(tmp_path))
    assert resumed == plain
    assert not path.exists()


def test_stale_checkpoint_falls_back_to_fresh_run(tmp_path):
    """An unreadable snapshot in the checkpoint_dir must not wedge the job:
    run_scenario_spec discards it and recomputes from slot 0."""
    import hashlib

    from repro.workloads.scenario import run_scenario_spec

    scenario = get_scenario("uniform-bernoulli")
    plain = run_scenario_spec(scenario.to_spec(), engine="array")
    signature = json.dumps(
        {"spec": scenario.to_spec(), "engine": "array",
         "chunk_slots": 700, "warmup_slots": 0},
        sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(signature.encode("utf-8")).hexdigest()[:16]
    path = tmp_path / f"{scenario.name}-{digest}.ckpt.json"
    path.write_text("{definitely not a checkpoint", encoding="utf-8")

    recovered = run_scenario_spec(scenario.to_spec(), engine="array",
                                  stream=True, chunk_slots=700,
                                  checkpoint_every=800,
                                  checkpoint_dir=str(tmp_path))
    assert recovered == plain
    assert not path.exists()


def test_checkpoint_records_scenario_label(tmp_path):
    path = tmp_path / "labelled.ckpt.json"
    scenario = get_scenario("uniform-bernoulli")
    scenario.run_stream(checkpoint_every=1000, checkpoint_path=path)
    assert read_checkpoint(path)["label"] == "uniform-bernoulli"
    session = StreamingSimulation.load_checkpoint(path)
    assert session.label == "uniform-bernoulli"


# --------------------------------------------------------------------- #
# Crash-resume under injected faults
# --------------------------------------------------------------------- #

_KILLED_CHILD = """\
import os
import signal
import sys

from repro.sim.streaming import StreamingSimulation
from repro.workloads.registry import get_scenario

scenario = get_scenario(sys.argv[1])
session = StreamingSimulation(scenario.build_simulation(), scenario.num_slots,
                              engine=sys.argv[2], chunk_slots=500)


def drive(stop_slot):
    arrivals = session.sim.arrivals
    while session.slot < stop_slot:
        count = min(session.chunk_slots, stop_slot - session.slot)
        window = arrivals.arrivals_slice(session.slot, count)
        session._execute(window if isinstance(window, list)
                         else list(window))


drive(scenario.num_slots * 2 // 5)
session.save_checkpoint(sys.argv[3])
# Progress past the snapshot dies with the process: the resumed run must
# recompute it, not trust anything the killed process did afterwards.
drive(scenario.num_slots * 3 // 5)
os.kill(os.getpid(), signal.SIGKILL)
"""


@pytest.mark.parametrize("engine", ENGINES)
def test_sigkilled_run_resumes_bit_identically(engine, tmp_path):
    """SIGKILL mid-chunk — the harshest crash there is: no atexit, no
    flush, nothing.  The surviving checkpoint must replay to the exact
    uninterrupted report."""
    import signal
    import subprocess
    import sys

    import repro

    scenario = get_scenario("uniform-bernoulli")
    uninterrupted = scenario.build_simulation().run_stream(
        scenario.num_slots, engine=engine, chunk_slots=500)
    path = tmp_path / "killed.ckpt.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(os.path.dirname(os.path.dirname(repro.__file__)))
    proc = subprocess.run(
        [sys.executable, "-c", _KILLED_CHILD, "uniform-bernoulli", engine,
         str(path)],
        env=env, capture_output=True, text=True, timeout=120)
    assert proc.returncode == -signal.SIGKILL, proc.stderr
    resumed = resume_stream(path)
    assert_reports_identical(resumed, uninterrupted, f"sigkill/{engine}")


@pytest.mark.parametrize("engine", ENGINES)
def test_truncated_envelope_then_retry_resumes_identically(engine, tmp_path):
    """A checkpoint torn by the injector must fail loudly, and retrying
    from the previous intact snapshot must land on the exact same report."""
    from repro.faults import FaultInjector, FaultPlan

    scenario = get_scenario("uniform-bernoulli")
    uninterrupted = scenario.build_simulation().run_stream(
        scenario.num_slots, engine=engine, chunk_slots=500)
    session = StreamingSimulation(scenario.build_simulation(),
                                  scenario.num_slots, engine=engine,
                                  chunk_slots=500)
    early = tmp_path / "early.ckpt.json"
    late = tmp_path / "late.ckpt.json"
    drive_to(session, 1000)
    session.save_checkpoint(early)
    drive_to(session, 2000)
    session.save_checkpoint(late)

    injector = FaultInjector(FaultPlan(master_seed=5, rates={"corrupt": 1.0}))
    assert injector.corrupt_file(late, f"test-tear:{engine}")
    with pytest.raises(CheckpointError):
        resume_stream(late)
    # The torn file is still on disk, untouched by the failed load.
    resumed = resume_stream(early)
    assert_reports_identical(resumed, uninterrupted, f"torn/{engine}")


def test_injected_resume_fault_fails_cleanly_then_recovers(tmp_path):
    """End-to-end through the wired fault site: resume_stream's own
    corrupt_file hook tears the checkpoint, the load raises
    CheckpointError, and a pristine copy still resumes identically."""
    import shutil

    from repro.faults import FaultInjector, FaultPlan, using_faults

    scenario = get_scenario("uniform-bernoulli")
    uninterrupted = scenario.build_simulation().run_stream(
        scenario.num_slots, engine="array", chunk_slots=500)
    session = StreamingSimulation(scenario.build_simulation(),
                                  scenario.num_slots, engine="array",
                                  chunk_slots=500)
    path = tmp_path / "run.ckpt.json"
    backup = tmp_path / "run.ckpt.json.backup"
    drive_to(session, 1000)
    session.save_checkpoint(path)
    shutil.copy(path, backup)

    plan = FaultPlan(master_seed=7, rates={"corrupt": 1.0})
    with using_faults(FaultInjector(plan)):
        with pytest.raises(CheckpointError):
            resume_stream(path)
    shutil.copy(backup, path)
    resumed = resume_stream(path)
    assert_reports_identical(resumed, uninterrupted, "resume-fault")
