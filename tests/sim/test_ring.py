"""Unit tests of the IntRing queue primitive behind the array engine."""

import random

import pytest

from repro.sim.ring import IntRing


class TestIntRing:
    def test_fifo_order(self):
        ring = IntRing()
        for value in range(5):
            ring.push(value * 10)
        assert [ring.popleft() for _ in range(5)] == [0, 10, 20, 30, 40]

    def test_len_and_bool(self):
        ring = IntRing()
        assert len(ring) == 0
        assert not ring
        ring.push(7)
        assert len(ring) == 1
        assert ring
        ring.popleft()
        assert len(ring) == 0
        assert not ring

    def test_peekleft_does_not_remove(self):
        ring = IntRing()
        ring.push(1)
        ring.push(2)
        assert ring.peekleft() == 1
        assert ring.peekleft() == 1
        assert len(ring) == 2

    def test_empty_pop_and_peek_raise(self):
        ring = IntRing()
        with pytest.raises(IndexError):
            ring.popleft()
        with pytest.raises(IndexError):
            ring.peekleft()

    def test_growth_preserves_order(self):
        ring = IntRing()
        initial = ring.capacity
        for value in range(initial * 4):
            ring.push(value)
        assert ring.capacity >= initial * 4
        assert [ring.popleft() for _ in range(initial * 4)] == list(
            range(initial * 4))

    def test_wraparound(self):
        """Interleaved pushes and pops force the cursors around the buffer
        without growing it."""
        ring = IntRing()
        expected = []
        counter = 0
        for _ in range(100):
            for _ in range(3):
                ring.push(counter)
                expected.append(counter)
                counter += 1
            for _ in range(3):
                assert ring.popleft() == expected.pop(0)
        assert ring.capacity == IntRing().capacity  # never needed to grow

    def test_pop_block_partial_and_full(self):
        ring = IntRing()
        for value in range(10):
            ring.push(value)
        out = []
        ring.pop_block(4, out)
        assert out == [0, 1, 2, 3]
        ring.pop_block(100, out)  # more than available: drains the rest
        assert out == list(range(10))
        assert len(ring) == 0
        ring.pop_block(5, out)  # empty ring: no-op
        assert out == list(range(10))

    def test_pop_block_nonpositive_count_is_noop(self):
        ring = IntRing()
        for value in range(3):
            ring.push(value)
        out = []
        ring.pop_block(0, out)
        ring.pop_block(-2, out)
        assert out == []
        assert len(ring) == 3
        assert [ring.popleft() for _ in range(3)] == [0, 1, 2]

    def test_iter_is_nondestructive(self):
        ring = IntRing()
        for value in (5, 6, 7):
            ring.push(value)
        assert list(ring) == [5, 6, 7]
        assert list(ring) == [5, 6, 7]
        assert "IntRing" in repr(ring)

    def test_clear(self):
        ring = IntRing()
        for value in range(5):
            ring.push(value)
        ring.clear()
        assert len(ring) == 0
        ring.push(42)
        assert ring.popleft() == 42

    def test_explicit_capacity_rounds_to_power_of_two(self):
        ring = IntRing(capacity=100)
        assert ring.capacity == 128
        for value in range(100):
            ring.push(value)
        assert ring.capacity == 128

    def test_randomised_against_list(self):
        """Differential test: a few thousand random operations against a
        plain list model."""
        rng = random.Random(1234)
        ring = IntRing()
        model = []
        for step in range(5000):
            op = rng.random()
            if op < 0.5:
                ring.push(step)
                model.append(step)
            elif op < 0.75 and model:
                assert ring.popleft() == model.pop(0)
            elif op < 0.85 and model:
                assert ring.peekleft() == model[0]
            else:
                count = rng.randrange(0, 6)
                got = []
                ring.pop_block(count, got)
                expect, model = model[:count], model[count:]
                assert got == expect
            assert len(ring) == len(model)
        assert list(ring) == model
