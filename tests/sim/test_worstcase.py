"""Tests for the job-friendly worst-case adversary runs."""

from repro.runner.jobs import Job
from repro.runner.sweep import SweepRunner
from repro.sim.worstcase import run_cfds_worst_case, run_rads_worst_case


class TestRADS:
    def test_zero_miss_within_bound(self):
        summary = run_rads_worst_case(num_queues=8, granularity=4, slots=2000)
        assert summary.zero_miss
        assert summary.cells_out == 2000
        assert summary.max_head_sram_occupancy <= summary.head_sram_bound


class TestCFDS:
    def test_zero_miss_zero_conflicts(self):
        summary = run_cfds_worst_case(num_queues=8, dram_access_slots=8,
                                      granularity=2, num_banks=32, slots=2000)
        assert summary.zero_miss
        assert summary.bank_conflicts == 0
        assert summary.cells_out == 2000
        assert (summary.max_request_register_occupancy
                <= summary.request_register_bound)


class TestAsJobs:
    def test_runs_through_the_sweep_runner(self):
        jobs = [
            Job(func="repro.sim.worstcase:run_rads_worst_case",
                kwargs={"num_queues": 8, "granularity": 4, "slots": 1000}),
            Job(func="repro.sim.worstcase:run_cfds_worst_case",
                kwargs={"num_queues": 8, "dram_access_slots": 8,
                        "granularity": 2, "num_banks": 32, "slots": 1000}),
        ]
        serial = SweepRunner(jobs=1).run(jobs)
        parallel = SweepRunner(jobs=2).run(jobs)
        assert serial == parallel
        assert [s.scheme for s in serial] == ["RADS", "CFDS"]
        assert all(s.zero_miss for s in serial)
