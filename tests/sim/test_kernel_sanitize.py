"""The ASan/UBSan build mode of the compiled span kernel."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.sim import kernel as span_kernel

REPO = Path(__file__).resolve().parent.parent.parent
HARNESS = REPO / "benchmarks" / "kernel_sanitize_check.py"


class TestSanitizeMode:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(span_kernel.SANITIZE_ENV, raising=False)
        assert not span_kernel.sanitize_enabled()

    @pytest.mark.parametrize("value", ["1", "on", "true", "yes", "ON"])
    def test_enabled_values(self, monkeypatch, value):
        monkeypatch.setenv(span_kernel.SANITIZE_ENV, value)
        assert span_kernel.sanitize_enabled()

    @pytest.mark.parametrize("value", ["", "0", "off", "false", "no"])
    def test_disabled_values(self, monkeypatch, value):
        monkeypatch.setenv(span_kernel.SANITIZE_ENV, value)
        assert not span_kernel.sanitize_enabled()

    def test_sanitized_cache_path_is_segregated(self, monkeypatch):
        monkeypatch.delenv(span_kernel.SANITIZE_ENV, raising=False)
        production = span_kernel._cache_path()
        monkeypatch.setenv(span_kernel.SANITIZE_ENV, "1")
        sanitized = span_kernel._cache_path()
        assert sanitized != production
        assert sanitized.name.endswith("-sanitize.so")
        assert not production.name.endswith("-sanitize.so")

    def test_preload_is_absolute_paths_or_none(self):
        preload = span_kernel.sanitizer_preload()
        if preload is None:
            pytest.skip("no sanitizer runtimes on this host")
        for lib in preload.split():
            assert Path(lib).is_absolute()


class TestHarness:
    def test_harness_exists(self):
        assert HARNESS.is_file()

    def test_harness_runs_or_skips(self):
        """The harness is self-gating: exit 0 both when the toolchain is
        present (full ASan/UBSan replay of the PR 9 stressor) and when it
        is absent (reported skip).  --require is reserved for CI."""
        proc = subprocess.run([sys.executable, str(HARNESS)],
                              capture_output=True, text=True, timeout=600)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert ("kernel sanitize check passed" in proc.stdout
                or "skip:" in proc.stdout)
