"""Property-based tests of the IntRing ring buffer (vs a deque model).

The array engine's correctness rests on IntRing behaving exactly like an
unbounded FIFO through arbitrary push/pop/wraparound interleavings — the
hand-written unit tests cover the known edge cases, hypothesis walks the
operation space.  ``derandomize=True`` keeps CI deterministic (the search
is seeded from the test name, not the clock).
"""

from collections import deque

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.sim.ring import IntRing  # noqa: E402

#: An operation sequence: pushes carry their value, the rest are opcodes.
_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("push"), st.integers(-2 ** 62, 2 ** 62)),
        st.tuples(st.just("popleft"), st.none()),
        st.tuples(st.just("peekleft"), st.none()),
        st.tuples(st.just("pop_block"), st.integers(-2, 12)),
        st.tuples(st.just("clear"), st.none()),
    ),
    max_size=200,
)

COMMON = dict(deadline=None, derandomize=True)


@given(ops=_OPS)
@settings(max_examples=200, **COMMON)
def test_ring_matches_deque_model(ops):
    """Every operation observable (return values, errors, length, iteration
    order) matches the deque reference through any interleaving."""
    ring, model = IntRing(), deque()
    for op, arg in ops:
        if op == "push":
            ring.push(arg)
            model.append(arg)
        elif op == "popleft":
            if model:
                assert ring.popleft() == model.popleft()
            else:
                with pytest.raises(IndexError):
                    ring.popleft()
        elif op == "peekleft":
            if model:
                assert ring.peekleft() == model[0]
            else:
                with pytest.raises(IndexError):
                    ring.peekleft()
        elif op == "pop_block":
            out = []
            ring.pop_block(arg, out)
            expected = [model.popleft()
                        for _ in range(min(max(arg, 0), len(model)))]
            assert out == expected
        else:  # clear
            ring.clear()
            model.clear()
        assert len(ring) == len(model)
        assert bool(ring) == bool(model)
        assert list(ring) == list(model)


@given(values=st.lists(st.integers(-2 ** 62, 2 ** 62)),
       capacity=st.integers(0, 64))
@settings(max_examples=100, **COMMON)
def test_fifo_order_preserved_through_growth(values, capacity):
    """Pushing n values then popping them returns them in order regardless
    of the initial capacity (growth relocates the ring transparently)."""
    ring = IntRing(capacity) if capacity else IntRing()
    for value in values:
        ring.push(value)
    assert [ring.popleft() for _ in range(len(values))] == values
    assert len(ring) == 0


@given(pairs=st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)),
                      max_size=60))
@settings(max_examples=100, **COMMON)
def test_wraparound_interleaving(pairs):
    """Alternating bursts of pushes and pops drive the head cursor around
    the buffer repeatedly; contents must always equal the model's."""
    ring, model = IntRing(), deque()
    counter = 0
    for pushes, pops in pairs:
        for _ in range(pushes):
            ring.push(counter)
            model.append(counter)
            counter += 1
        for _ in range(min(pops, len(model))):
            assert ring.popleft() == model.popleft()
        assert list(ring) == list(model)
    assert ring.capacity >= len(ring)


@given(n=st.integers(0, 500))
@settings(max_examples=50, **COMMON)
def test_capacity_stays_power_of_two(n):
    ring = IntRing()
    for value in range(n):
        ring.push(value)
    assert ring.capacity & (ring.capacity - 1) == 0
    assert ring.capacity >= max(n, 1)
