"""The arbiter/engine contract, enforced identically on every engine.

The batched loop used to index ``backlog[request]`` straight off whatever a
custom arbiter returned: an index ``>= num_queues`` crashed with a bare
``IndexError``, ``-1`` silently read the *last* queue's backlog (diverging
from the reference loop's ``can_request`` gate), and a float or bool slipped
even deeper before failing.  The pinned contract: a request is ``None`` or a
plain ``int`` in ``[0, num_queues)``; anything else raises
:class:`~repro.errors.ArbiterContractError` with the same message on the
reference, batched and array engines — and on the streaming path, which
reuses them.
"""

import pytest

from repro.errors import ArbiterContractError
from repro.traffic.arbiters import Arbiter
from repro.workloads.registry import get_scenario

ENGINES = ("reference", "batched", "array")

#: Invalid returns and the slot at which the arbiter misbehaves.
BAD_REQUESTS = (
    pytest.param(8, id="out-of-range"),          # num_queues for an 8q buffer
    pytest.param(10 ** 9, id="way-out-of-range"),
    pytest.param(-1, id="negative"),             # would silently alias q7
    pytest.param(-5, id="very-negative"),
    pytest.param(True, id="bool"),               # bool is not a queue index
    pytest.param(2.0, id="float"),
    pytest.param("3", id="string"),
)


class MisbehavingArbiter(Arbiter):
    """Behaves like a fixed round-robin until ``bad_slot``, then returns
    ``bad_request`` once."""

    def __init__(self, num_queues, bad_request, bad_slot=57):
        self.num_queues = num_queues
        self.bad_request = bad_request
        self.bad_slot = bad_slot

    def next_request(self, slot, backlog):
        if slot == self.bad_slot:
            return self.bad_request
        queue = slot % self.num_queues
        return queue if backlog[queue] > 0 else None


def _sim_with(arbiter, record_trace=False):
    scenario = get_scenario("uniform-bernoulli")
    sim = scenario.build_simulation(record_trace=record_trace)
    sim.arbiter = arbiter
    return sim


@pytest.mark.parametrize("bad_request", BAD_REQUESTS)
@pytest.mark.parametrize("engine", ENGINES)
def test_invalid_request_raises_identically_on_every_engine(engine,
                                                            bad_request):
    sim = _sim_with(MisbehavingArbiter(8, bad_request))
    with pytest.raises(ArbiterContractError) as excinfo:
        sim.run(200, engine=engine)
    assert excinfo.value.num_queues == 8
    assert excinfo.value.slot == 57
    assert excinfo.value.request == bad_request or (
        excinfo.value.request is bad_request)


@pytest.mark.parametrize("bad_request", [8, -1, True])
def test_error_message_is_engine_independent(bad_request):
    """The differential guarantee: not just the same type, the same error."""
    messages = set()
    for engine in ENGINES:
        sim = _sim_with(MisbehavingArbiter(8, bad_request))
        with pytest.raises(ArbiterContractError) as excinfo:
            sim.run(200, engine=engine)
        messages.add(str(excinfo.value))
    assert len(messages) == 1


@pytest.mark.parametrize("engine", ENGINES)
def test_streaming_path_enforces_the_same_contract(engine):
    sim = _sim_with(MisbehavingArbiter(8, 99))
    with pytest.raises(ArbiterContractError, match=r"\[0, 8\)"):
        sim.run_stream(200, engine=engine, chunk_slots=50)


@pytest.mark.parametrize("engine", ENGINES)
def test_well_behaved_custom_arbiter_still_runs(engine):
    """The validation must not reject the legal returns: ints in range and
    None, including requests for currently empty queues (gated to idle)."""

    class EagerArbiter(Arbiter):
        def next_request(self, slot, backlog):
            return slot % 8  # sometimes an empty queue: legal, gated to None

    sim = _sim_with(EagerArbiter())
    report = sim.run(200, engine=engine)
    assert report.throughput.departures > 0


def test_gating_still_matches_across_engines():
    """The differential check the bug report asked to pin: a custom arbiter
    whose requests are legal but often inadmissible produces bit-identical
    reports everywhere (no engine silently diverges on the gate)."""

    class EagerArbiter(Arbiter):
        def next_request(self, slot, backlog):
            return (slot * 5) % 8

    reports = {}
    for engine in ENGINES:
        sim = _sim_with(EagerArbiter(), record_trace=True)
        reports[engine] = sim.run(400, engine=engine)
    for engine in ("batched", "array"):
        assert reports[engine].throughput == reports["reference"].throughput
        assert reports[engine].latency == reports["reference"].latency
        assert (reports[engine].trace.events
                == reports["reference"].trace.events)
