"""Tests for the closed-loop simulation driver."""

import pytest

from repro.rads.buffer import RADSPacketBuffer
from repro.rads.config import RADSConfig
from repro.sim.engine import ClosedLoopSimulation
from repro.traffic.arbiters import OldestCellArbiter, RandomArbiter
from repro.traffic.arrivals import BernoulliArrivals, DeterministicArrivals


@pytest.fixture
def buffer():
    return RADSPacketBuffer(RADSConfig(num_queues=4, granularity=3))


class TestClosedLoopSimulation:
    def test_conservation_of_cells(self, buffer):
        sim = ClosedLoopSimulation(buffer,
                                   BernoulliArrivals(4, load=0.7, seed=1),
                                   OldestCellArbiter(4))
        report = sim.run(2000)
        assert report.throughput.arrivals >= report.throughput.departures
        # After the drain, everything that was requested has left; what is
        # left in the buffer is arrivals minus departures.
        remaining = sum(buffer.backlog(q) for q in range(4))
        in_flight = sum(buffer._outstanding_requests.values()) - report.throughput.departures
        assert report.throughput.arrivals == report.throughput.departures + remaining + in_flight

    def test_zero_miss_report(self, buffer):
        sim = ClosedLoopSimulation(buffer,
                                   BernoulliArrivals(4, load=0.8, seed=2),
                                   RandomArbiter(4, load=0.9, seed=3))
        report = sim.run(1500)
        assert report.zero_miss

    def test_latency_accounts_served_cells(self, buffer):
        sim = ClosedLoopSimulation(buffer,
                                   BernoulliArrivals(4, load=0.5, seed=4),
                                   OldestCellArbiter(4))
        report = sim.run(1000)
        assert report.latency.count == report.throughput.departures
        if report.latency.count:
            # Every served cell waited at least the lookahead delay.
            assert report.latency.minimum >= buffer.config.effective_lookahead

    def test_trace_recording_and_length(self, buffer):
        sim = ClosedLoopSimulation(buffer,
                                   DeterministicArrivals([0, 1, None]),
                                   OldestCellArbiter(4),
                                   record_trace=True)
        report = sim.run(300, drain=False)
        assert report.trace is not None
        assert len(report.trace) == 300

    def test_inadmissible_requests_are_filtered(self, buffer):
        # An arbiter that always asks for queue 0 even when it is empty: the
        # engine must squash those requests rather than crash the buffer.
        class StubbornArbiter:
            def next_request(self, slot, backlog):
                return 0

        sim = ClosedLoopSimulation(buffer, DeterministicArrivals([1]), StubbornArbiter())
        report = sim.run(100)
        assert report.throughput.departures == 0

    def test_negative_slots_rejected(self, buffer):
        sim = ClosedLoopSimulation(buffer)
        with pytest.raises(ValueError):
            sim.run(-1)
