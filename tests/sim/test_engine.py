"""Tests for the closed-loop simulation driver."""

import pytest

from repro.errors import ConfigurationError
from repro.rads.buffer import RADSPacketBuffer
from repro.rads.config import RADSConfig
from repro.sim.engine import ClosedLoopSimulation
from repro.traffic.arbiters import OldestCellArbiter, RandomArbiter, TraceArbiter
from repro.traffic.arrivals import (
    BernoulliArrivals,
    DeterministicArrivals,
    TraceArrivals,
)


@pytest.fixture
def buffer():
    return RADSPacketBuffer(RADSConfig(num_queues=4, granularity=3))


class TestClosedLoopSimulation:
    def test_conservation_of_cells(self, buffer):
        sim = ClosedLoopSimulation(buffer,
                                   BernoulliArrivals(4, load=0.7, seed=1),
                                   OldestCellArbiter(4))
        report = sim.run(2000)
        assert report.throughput.arrivals >= report.throughput.departures
        # After the drain, everything that was requested has left; what is
        # left in the buffer is arrivals minus departures.
        remaining = sum(buffer.backlog(q) for q in range(4))
        in_flight = sum(buffer._outstanding_requests.values()) - report.throughput.departures
        assert report.throughput.arrivals == report.throughput.departures + remaining + in_flight

    def test_zero_miss_report(self, buffer):
        sim = ClosedLoopSimulation(buffer,
                                   BernoulliArrivals(4, load=0.8, seed=2),
                                   RandomArbiter(4, load=0.9, seed=3))
        report = sim.run(1500)
        assert report.zero_miss

    def test_latency_accounts_served_cells(self, buffer):
        sim = ClosedLoopSimulation(buffer,
                                   BernoulliArrivals(4, load=0.5, seed=4),
                                   OldestCellArbiter(4))
        report = sim.run(1000)
        assert report.latency.count == report.throughput.departures
        if report.latency.count:
            # Every served cell waited at least the lookahead delay.
            assert report.latency.minimum >= buffer.config.effective_lookahead

    def test_trace_recording_and_length(self, buffer):
        sim = ClosedLoopSimulation(buffer,
                                   DeterministicArrivals([0, 1, None]),
                                   OldestCellArbiter(4),
                                   record_trace=True)
        report = sim.run(300, drain=False)
        assert report.trace is not None
        assert len(report.trace) == 300

    def test_inadmissible_requests_are_filtered(self, buffer):
        # An arbiter that always asks for queue 0 even when it is empty: the
        # engine must squash those requests rather than crash the buffer.
        class StubbornArbiter:
            def next_request(self, slot, backlog):
                return 0

        sim = ClosedLoopSimulation(buffer, DeterministicArrivals([1]), StubbornArbiter())
        report = sim.run(100)
        assert report.throughput.departures == 0

    def test_negative_slots_rejected(self, buffer):
        sim = ClosedLoopSimulation(buffer)
        with pytest.raises(ConfigurationError):
            sim.run(-1)


@pytest.mark.parametrize("fast_path", [True, False],
                         ids=["fast-path", "legacy-loop"])
class TestEdgeModes:
    def test_fill_only_no_arbiter(self, buffer, fast_path):
        """No arbiter: cells accumulate, nothing is ever served."""
        sim = ClosedLoopSimulation(buffer, BernoulliArrivals(4, load=0.8, seed=1))
        report = sim.run(500, fast_path=fast_path)
        assert report.throughput.departures == 0
        assert report.throughput.idle_request_slots >= 500
        assert report.latency.count == 0
        assert sum(buffer.backlog(q) for q in range(4)) == report.throughput.arrivals

    def test_drain_only_no_arrivals(self, fast_path):
        """No arrivals: a pre-filled buffer drains to empty and the served
        count matches what was pre-loaded."""
        buffer = RADSPacketBuffer(RADSConfig(num_queues=4, granularity=3))
        preloaded = 40
        for i in range(preloaded):
            buffer.step(i % 4, None)
        sim = ClosedLoopSimulation(buffer, arrivals=None,
                                   arbiter=OldestCellArbiter(4))
        report = sim.run(preloaded + 100, fast_path=fast_path)
        assert report.throughput.arrivals == 0
        assert report.throughput.departures == preloaded
        assert all(buffer.backlog(q) == 0 for q in range(4))

    def test_empty_run_zero_slots(self, buffer, fast_path):
        report = ClosedLoopSimulation(buffer).run(0, drain=False,
                                                  fast_path=fast_path)
        assert report.throughput.slots == 0
        assert report.throughput.departures == 0

    def test_recorded_trace_replays_identically(self, buffer, fast_path):
        """record_trace=True: replaying the captured (arrival, request)
        sequence through a fresh identical buffer reproduces the run."""
        sim = ClosedLoopSimulation(buffer,
                                   BernoulliArrivals(4, load=0.7, seed=21),
                                   RandomArbiter(4, load=0.8, seed=22),
                                   record_trace=True)
        original = sim.run(800, fast_path=fast_path)

        fresh = RADSPacketBuffer(RADSConfig(num_queues=4, granularity=3))
        replay = ClosedLoopSimulation(fresh,
                                      TraceArrivals(original.trace.arrivals()),
                                      TraceArbiter(original.trace.requests()),
                                      record_trace=True)
        replayed = replay.run(len(original.trace), fast_path=fast_path)
        assert replayed.throughput == original.throughput
        assert replayed.latency == original.latency
        assert replayed.buffer_result == original.buffer_result
        assert replayed.trace.events == original.trace.events


class TestDrops:
    def test_dropped_cells_is_a_real_attribute(self, buffer):
        """Both buffer classes expose dropped_cells; the engine reads it
        directly (no getattr fallback)."""
        assert buffer.dropped_cells == 0
        report = ClosedLoopSimulation(buffer,
                                      BernoulliArrivals(4, load=0.5, seed=1),
                                      OldestCellArbiter(4)).run(200)
        assert report.throughput.drops == 0

    def test_non_strict_finite_dram_counts_drops(self):
        """With a tiny DRAM and strict=False, overflow evictions are counted
        instead of raising."""
        config = RADSConfig(num_queues=2, granularity=4, dram_cells=4,
                            strict=False)
        buffer = RADSPacketBuffer(config)
        sim = ClosedLoopSimulation(buffer, DeterministicArrivals([0, 1]))
        report = sim.run(400)
        assert buffer.dropped_cells > 0
        assert report.throughput.drops == buffer.dropped_cells
