"""Tests for the simulation statistics collectors."""

import pytest

from repro.sim.stats import LatencyStats, ThroughputStats


class TestLatencyStats:
    def test_mean_min_max(self):
        stats = LatencyStats()
        for arrival, departure in [(0, 5), (2, 4), (10, 20)]:
            stats.record(arrival, departure)
        assert stats.count == 3
        assert stats.mean == pytest.approx((5 + 2 + 10) / 3)
        assert stats.minimum == 2
        assert stats.maximum == 10

    def test_percentile(self):
        stats = LatencyStats()
        for delay in [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]:
            stats.record(0, delay)
        assert stats.percentile(0.5) == 5
        assert stats.percentile(1.0) == 10
        assert stats.percentile(0.1) == 1

    def test_empty_stats(self):
        stats = LatencyStats()
        assert stats.mean == 0.0
        assert stats.percentile(0.5) == 0

    def test_invalid_inputs(self):
        stats = LatencyStats()
        with pytest.raises(ValueError):
            stats.record(5, 2)
        with pytest.raises(ValueError):
            stats.percentile(0.0)


class TestThroughputStats:
    def test_loads(self):
        stats = ThroughputStats(arrivals=80, departures=75, drops=5, slots=100)
        assert stats.offered_load == pytest.approx(0.8)
        assert stats.carried_load == pytest.approx(0.75)
        assert stats.loss_fraction == pytest.approx(5 / 80)

    def test_zero_division_guards(self):
        stats = ThroughputStats()
        assert stats.offered_load == 0.0
        assert stats.carried_load == 0.0
        assert stats.loss_fraction == 0.0


class TestLatencyPercentiles:
    def test_p50_p95_p99_properties(self):
        stats = LatencyStats()
        for delay in range(1, 101):  # delays 1..100, one each
            stats.record(0, delay)
        assert stats.p50 == 50
        assert stats.p95 == 95
        assert stats.p99 == 99

    def test_percentiles_are_monotone(self):
        stats = LatencyStats()
        for delay in [3, 3, 3, 7, 7, 40, 41, 42, 500]:
            stats.record(0, delay)
        assert stats.p50 <= stats.p95 <= stats.p99 <= stats.maximum

    def test_empty_percentiles_are_zero(self):
        stats = LatencyStats()
        assert stats.p50 == stats.p95 == stats.p99 == 0

    def test_snapshot_equality(self):
        a, b = LatencyStats(), LatencyStats()
        for delay in [1, 5, 5, 9]:
            a.record(0, delay)
            b.record(0, delay)
        assert a == b
        assert a.snapshot() == b.snapshot()
        b.record(0, 2)
        assert a != b

    def test_equality_against_other_types(self):
        assert LatencyStats() != object()


class TestBatchPercentiles:
    def _loaded(self):
        stats = LatencyStats()
        for delay in [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]:
            stats.record(0, delay)
        return stats

    def test_batch_matches_single_calls(self):
        stats = self._loaded()
        fractions = (0.1, 0.5, 0.95, 0.99, 1.0)
        assert stats.percentiles(fractions) == tuple(
            stats.percentile(fraction) for fraction in fractions)

    def test_batch_preserves_input_order(self):
        stats = self._loaded()
        assert stats.percentiles((0.99, 0.1, 0.5)) == (10, 1, 5)

    def test_batch_with_duplicates(self):
        stats = self._loaded()
        assert stats.percentiles((0.5, 0.5)) == (5, 5)

    def test_batch_empty_histogram(self):
        assert LatencyStats().percentiles((0.5, 0.95)) == (0, 0)

    def test_batch_validates_fractions(self):
        stats = self._loaded()
        with pytest.raises(ValueError):
            stats.percentiles((0.5, 0.0))
        with pytest.raises(ValueError):
            stats.percentiles((1.5,))

    def test_batch_empty_tuple(self):
        assert self._loaded().percentiles(()) == ()


class TestRecordDelay:
    def test_bulk_equivalent_to_individual_records(self):
        bulk, single = LatencyStats(), LatencyStats()
        bulk.record_delay(4, 3)
        bulk.record_delay(9)
        for _ in range(3):
            single.record(0, 4)
        single.record(0, 9)
        assert bulk == single
        assert bulk.count == 4
        assert bulk.mean == pytest.approx((4 * 3 + 9) / 4)

    def test_record_delay_validates(self):
        stats = LatencyStats()
        with pytest.raises(ValueError):
            stats.record_delay(-1)
        with pytest.raises(ValueError):
            stats.record_delay(3, 0)


class TestEmptyStats:
    """The documented edge case: an empty collector answers every query with
    a well-defined zero, never an artefact of the percentile sweep."""

    def test_percentiles_on_empty_stats_are_zero(self):
        stats = LatencyStats()
        assert stats.percentiles((0.50, 0.95, 0.99)) == (0, 0, 0)
        assert stats.percentile(0.01) == 0
        assert stats.percentile(1.0) == 0

    def test_percentile_properties_on_empty_stats(self):
        stats = LatencyStats()
        assert stats.p50 == 0
        assert stats.p95 == 0
        assert stats.p99 == 0
        assert isinstance(stats.p99, int)

    def test_empty_stats_still_validate_fractions(self):
        with pytest.raises(ValueError):
            LatencyStats().percentile(0.0)
        with pytest.raises(ValueError):
            LatencyStats().percentiles((1.01,))

    def test_count_distinguishes_empty_from_all_zero_delays(self):
        empty, zeros = LatencyStats(), LatencyStats()
        zeros.record_delay(0, 5)
        assert empty.percentile(0.5) == zeros.percentile(0.5) == 0
        assert empty.count == 0
        assert zeros.count == 5


class TestHistogramRoundTrip:
    def _loaded(self) -> LatencyStats:
        stats = LatencyStats()
        stats.record_delay(3, 4)
        stats.record_delay(1, 2)
        stats.record_delay(10)
        return stats

    def test_histogram_items_sorted(self):
        assert self._loaded().histogram_items() == ((1, 2), (3, 4), (10, 1))

    def test_from_histogram_reconstructs_equal_collector(self):
        stats = self._loaded()
        rebuilt = LatencyStats.from_histogram(stats.histogram_items())
        assert rebuilt == stats
        assert rebuilt.mean == stats.mean
        assert rebuilt.percentiles((0.5, 0.99)) == stats.percentiles((0.5, 0.99))

    def test_from_empty_histogram(self):
        assert LatencyStats.from_histogram(()) == LatencyStats()

    def test_merge_equals_single_collector(self):
        """Merging port-level collectors reproduces the collector a single
        run over all observations would have built."""
        left, right, combined = LatencyStats(), LatencyStats(), LatencyStats()
        for delay, count in ((0, 3), (4, 1), (7, 2)):
            left.record_delay(delay, count)
            combined.record_delay(delay, count)
        for delay, count in ((4, 5), (12, 1)):
            right.record_delay(delay, count)
            combined.record_delay(delay, count)
        assert left.merge(right) is left
        assert left == combined

    def test_merge_with_empty_is_identity(self):
        stats = self._loaded()
        before = stats.snapshot()
        stats.merge(LatencyStats())
        assert stats.snapshot() == before


class TestHugeCountPercentiles:
    """Integer-exact percentile thresholds (the 2**53 regime).

    ``seen >= fraction * count`` with a float product misrounds once counts
    approach 2**53: the product falls between representable doubles and the
    comparison fires one histogram bin early or late.  Long-horizon streamed
    runs are exactly where such counts occur, so the thresholds are computed
    in exact integer arithmetic (``ceil(count * p / q)`` with the fraction
    snapped to the decimal the caller meant).
    """

    def test_median_at_2_to_53_plus_one(self):
        """The historical failure: count = 2**53 + 1 split just below the
        median.  ``0.5 * (2**53 + 1)`` rounds *down* to 2**52 (round-half-
        even), so the float comparison returned the lower bin; the exact
        threshold ceil((2**53 + 1)/2) = 2**52 + 1 lands in the upper."""
        stats = LatencyStats()
        stats.record_delay(0, 2 ** 52)        # cumulative: 2**52
        stats.record_delay(1, 2 ** 52 + 1)    # cumulative: 2**53 + 1
        assert stats.count == 2 ** 53 + 1
        assert stats.percentile(0.5) == 1

    def test_thresholds_are_exact_at_every_scale(self):
        """The exact rank of the boundary element is hit — not its float
        neighbourhood — for counts from tiny to beyond 2**53."""
        for total in (10, 999, 2 ** 31 - 1, 2 ** 53 - 1, 2 ** 53 + 3,
                      2 ** 60 + 7):
            for fraction, num, den in ((0.5, 1, 2), (0.95, 19, 20),
                                       (0.99, 99, 100), (1.0, 1, 1)):
                exact_rank = -(-total * num // den)  # ceil(total * num/den)
                stats = LatencyStats()
                if exact_rank > 1:
                    stats.record_delay(3, exact_rank - 1)
                stats.record_delay(5, 1)
                remaining = total - exact_rank
                if remaining > 0:
                    stats.record_delay(9, remaining)
                assert stats.percentile(fraction) == 5, (total, fraction)

    def test_p100_is_the_maximum_even_at_huge_counts(self):
        stats = LatencyStats()
        stats.record_delay(2, 2 ** 53)
        stats.record_delay(11, 1)
        assert stats.percentile(1.0) == 11
        assert stats.percentile(1.0) == stats.maximum

    def test_fraction_means_its_decimal_not_its_float(self):
        """0.1 (the double nearest 1/10, slightly above it) must behave as
        the decimal 10%: at count 10 the p10 is the 1st element, not the
        2nd (exact-rational arithmetic on the raw double would give 2)."""
        stats = LatencyStats()
        for delay in range(1, 11):
            stats.record_delay(delay)
        assert stats.percentile(0.1) == 1
        assert stats.percentile(0.3) == 3

    def test_batch_order_with_mixed_huge_thresholds(self):
        stats = LatencyStats()
        stats.record_delay(1, 2 ** 53 - 1)
        stats.record_delay(2, 2)
        assert stats.percentiles((1.0, 0.5, 0.999999999)) == (2, 1, 1)
