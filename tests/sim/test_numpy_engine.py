"""Acceptance tests: ``engine="numpy"`` is bit-identical to the array
engine on every registered scenario and every edge mode, with and without
the compiled span kernel, and degrades to a clear error without numpy."""

import base64
import json
import os
import pickle
import sys

import pytest

from repro.errors import (
    BufferOverflowError,
    ConfigurationError,
    StaleSimulationError,
)
from repro.core.buffer import CFDSPacketBuffer
from repro.core.config import CFDSConfig
from repro.rads.buffer import RADSPacketBuffer
from repro.rads.config import RADSConfig
from repro.sim import kernel as span_kernel
from repro.sim import numpy_engine
from repro.sim.engine import ClosedLoopSimulation
from repro.sim.numpy_engine import NUMPY_AVAILABLE
from repro.sim.streaming import StreamingSimulation, resume_stream
from repro.workloads.registry import get_scenario
from repro.traffic.arbiters import OldestCellArbiter, RandomArbiter
from repro.traffic.arrivals import BernoulliArrivals
from repro.workloads import all_scenarios
from repro.workloads.registry import scenario_names

requires_numpy = pytest.mark.skipif(not NUMPY_AVAILABLE,
                                    reason="numpy not installed")

#: Both execution tiers of the RADS core: the compiled span kernel (when it
#: loads — without a compiler this leg just re-runs the fused loop) and the
#: pure-python fused loop (kernel force-disabled).
KERNEL_MODES = ("kernel", "no-kernel")


@pytest.fixture(params=KERNEL_MODES)
def kernel_mode(request, monkeypatch):
    if request.param == "no-kernel":
        monkeypatch.setattr(span_kernel, "_kernel", None)
        monkeypatch.setattr(span_kernel, "_kernel_tried", True)
    return request.param


def assert_reports_identical(left, right):
    assert left.throughput == right.throughput
    assert left.latency == right.latency
    assert left.buffer_result == right.buffer_result


def _build_buffer(scheme, **overrides):
    if scheme == "rads":
        return RADSPacketBuffer(RADSConfig(num_queues=8, granularity=4,
                                           **overrides))
    return CFDSPacketBuffer(CFDSConfig(num_queues=8, dram_access_slots=8,
                                       granularity=2, num_banks=32,
                                       **overrides))


def run_both(make_sim, num_slots, drain=True):
    array = make_sim().run(num_slots, drain=drain, engine="array")
    numpy = make_sim().run(num_slots, drain=drain, engine="numpy")
    return array, numpy


# --------------------------------------------------------------------- #
# The registered suite, through both kernel modes.
# --------------------------------------------------------------------- #

@requires_numpy
@pytest.mark.parametrize("name", scenario_names())
def test_numpy_identical_on_registered_scenarios(name, kernel_mode):
    scenario = next(s for s in all_scenarios() if s.name == name)
    array = scenario.run(engine="array")
    numpy = scenario.run(engine="numpy")
    assert_reports_identical(array, numpy)


@requires_numpy
@pytest.mark.parametrize("name", scenario_names())
def test_numpy_identical_without_drain(name, kernel_mode):
    scenario = next(s for s in all_scenarios() if s.name == name)
    array = scenario.run(engine="array", num_slots=600)
    numpy = scenario.run(engine="numpy", num_slots=600)
    assert_reports_identical(array, numpy)


@requires_numpy
def test_numpy_identical_with_trace_recorded():
    """A traced run cannot use the fused loop (the trace needs per-slot
    events) — the scalar delegation must still be bit-identical, trace
    included."""
    scenario = next(s for s in all_scenarios()
                    if s.name == "uniform-bernoulli")
    array = scenario.run(engine="array", record_trace=True)
    numpy = scenario.run(engine="numpy", record_trace=True)
    assert_reports_identical(array, numpy)
    assert array.trace.events == numpy.trace.events


# --------------------------------------------------------------------- #
# Edge modes: fill-only, drain-only, zero/one slot, lossy, no drain.
# --------------------------------------------------------------------- #

@requires_numpy
def test_fill_only_run(kernel_mode):
    """No arbiter: the buffer only fills; both engines agree."""
    def make_sim():
        return ClosedLoopSimulation(
            _build_buffer("rads"), BernoulliArrivals(8, load=0.9, seed=21),
            None)

    array, numpy = run_both(make_sim, 800)
    assert_reports_identical(array, numpy)
    assert numpy.throughput.arrivals > 0
    assert numpy.throughput.departures == 0


@requires_numpy
def test_drain_only_run(kernel_mode):
    """No arrivals: idle request slots only; both engines agree."""
    def make_sim():
        return ClosedLoopSimulation(_build_buffer("rads"), None,
                                    OldestCellArbiter(8))

    array, numpy = run_both(make_sim, 500)
    assert_reports_identical(array, numpy)
    assert numpy.throughput.arrivals == 0


@requires_numpy
@pytest.mark.parametrize("num_slots", [0, 1])
def test_degenerate_slot_counts(num_slots, kernel_mode):
    def make_sim():
        return ClosedLoopSimulation(
            _build_buffer("rads"), BernoulliArrivals(8, load=0.5, seed=3),
            RandomArbiter(8, seed=4))

    array, numpy = run_both(make_sim, num_slots)
    assert_reports_identical(array, numpy)


@requires_numpy
@pytest.mark.parametrize("drain", [True, False])
def test_lossy_run_counts_identical_drops(drain, kernel_mode):
    """strict=False with a bounded DRAM: overflow blocks are clamped to
    the remaining room and the loss is counted, never raised — identically
    on both engines."""
    def make_sim():
        return ClosedLoopSimulation(
            _build_buffer("rads", dram_cells=8, strict=False),
            BernoulliArrivals(8, load=1.0, seed=11),
            RandomArbiter(8, seed=12, load=0.3))

    array, numpy = run_both(make_sim, 1200, drain=drain)
    assert_reports_identical(array, numpy)
    assert numpy.throughput.drops > 0


@requires_numpy
def test_strict_overflow_raises_identically(kernel_mode):
    """A strict-mode overflow aborts the kernel; the python replay must
    surface the same exception the array engine raises."""
    def make_sim():
        return ClosedLoopSimulation(
            _build_buffer("rads", tail_sram_cells=3, strict=True),
            BernoulliArrivals(8, load=1.0, seed=11),
            RandomArbiter(8, seed=12, load=0.3))

    with pytest.raises(BufferOverflowError) as array_exc:
        make_sim().run(1200, engine="array")
    with pytest.raises(BufferOverflowError) as numpy_exc:
        make_sim().run(1200, engine="numpy")
    assert str(numpy_exc.value) == str(array_exc.value)


@requires_numpy
def test_cfds_falls_back_to_array_core(kernel_mode):
    """CFDS has no fused core: engine="numpy" must transparently run the
    array core and match it."""
    def make_sim():
        return ClosedLoopSimulation(
            _build_buffer("cfds"), BernoulliArrivals(8, load=0.8, seed=5),
            RandomArbiter(8, seed=6))

    array, numpy = run_both(make_sim, 900)
    assert_reports_identical(array, numpy)


# --------------------------------------------------------------------- #
# Selection plumbing and failure modes.
# --------------------------------------------------------------------- #

@requires_numpy
def test_numpy_engine_requires_fresh_buffer():
    buffer = _build_buffer("rads")
    buffer.step(None, None)
    sim = ClosedLoopSimulation(buffer)
    with pytest.raises(StaleSimulationError, match="freshly built"):
        sim.run(10, engine="numpy")


@requires_numpy
def test_numpy_engine_rejects_second_run():
    sim = ClosedLoopSimulation(_build_buffer("rads"),
                               BernoulliArrivals(8, load=0.5, seed=3),
                               RandomArbiter(8, seed=4))
    sim.run(200, engine="numpy")
    with pytest.raises(StaleSimulationError):
        sim.run(200, engine="numpy")


def test_missing_numpy_is_a_configuration_error(monkeypatch):
    """Without the optional dependency, engine="numpy" must fail with a
    ConfigurationError that names the extra — not an ImportError."""
    monkeypatch.setattr(numpy_engine, "_np", None)
    sim = ClosedLoopSimulation(
        _build_buffer("rads"), BernoulliArrivals(8, load=0.5, seed=3),
        RandomArbiter(8, seed=4))
    with pytest.raises(ConfigurationError, match=r"\[numpy\]"):
        sim.run(100, engine="numpy")


def test_kernel_kill_switch(monkeypatch):
    monkeypatch.setenv(span_kernel.KERNEL_ENV, "0")
    assert not span_kernel.kernel_enabled()
    monkeypatch.setenv(span_kernel.KERNEL_ENV, "off")
    assert not span_kernel.kernel_enabled()
    monkeypatch.delenv(span_kernel.KERNEL_ENV)
    assert span_kernel.kernel_enabled()


@requires_numpy
def test_unknown_engine_error_names_numpy():
    sim = ClosedLoopSimulation(_build_buffer("rads"))
    with pytest.raises(ConfigurationError, match="numpy"):
        sim.run(10, engine="warp")


# --------------------------------------------------------------------- #
# Span-kernel hardening (review regressions).
# --------------------------------------------------------------------- #

@requires_numpy
def test_streamed_backlog_migration_identical(kernel_mode):
    """Streamed chunks over a machine with a large migrating backlog: a
    rarely-granting arbiter and one hot queue make the tail MMA push far
    more cells into DRAM per chunk than the chunk has slots (the kernel's
    out buffers must be sized for backlog migration, not just arrivals)."""
    def make_sim():
        return ClosedLoopSimulation(
            RADSPacketBuffer(RADSConfig(num_queues=8, granularity=64)),
            BernoulliArrivals(8, load=1.0, seed=31,
                              weights=[500, 1, 1, 1, 1, 1, 1, 1]),
            RandomArbiter(8, seed=32, load=0.05))

    array = make_sim().run_stream(4000, engine="array", chunk_slots=200)
    numpy = make_sim().run_stream(4000, engine="numpy", chunk_slots=200)
    assert_reports_identical(array, numpy)
    assert numpy.throughput.arrivals > 3000


@requires_numpy
def test_checkpoint_after_kernel_span_is_numpy_free(tmp_path):
    """A checkpoint written after kernel-backed spans must not embed any
    numpy object — the documented contract is that snapshots resume on
    hosts without the optional extra (scalar-loop fallback)."""
    if span_kernel.load_kernel() is None:
        pytest.skip("no C compiler: the span kernel never ran")
    scenario = get_scenario("uniform-bernoulli")
    uninterrupted = scenario.build_simulation().run_stream(
        scenario.num_slots, engine="numpy", chunk_slots=500)

    session = StreamingSimulation(scenario.build_simulation(),
                                  scenario.num_slots, engine="numpy",
                                  chunk_slots=500)
    arrivals = session.sim.arrivals
    while session.slot < 1000:
        count = min(session.chunk_slots, 1000 - session.slot)
        session._execute(list(arrivals.arrivals_slice(session.slot, count)))
    path = tmp_path / "kernel.ckpt.json"
    session.save_checkpoint(path)
    resumed = resume_stream(path)
    assert_reports_identical(resumed, uninterrupted)

    # The snapshot must unpickle on a host with no numpy at all: block
    # every numpy module and load the payload (an embedded ndarray would
    # raise ImportError here).
    blob = base64.b64decode(json.loads(path.read_text())["state_b64"])
    numpy_mods = {name: mod for name, mod in sys.modules.items()
                  if name == "numpy" or name.startswith("numpy.")}
    try:
        for name in numpy_mods:
            sys.modules[name] = None
        state = pickle.loads(blob)
    finally:
        sys.modules.update(numpy_mods)
    assert state["slot"] == 1000


def test_kernel_cache_is_private(monkeypatch, tmp_path):
    """The compiled-kernel cache lives under the user's private cache dir
    (XDG_CACHE_HOME honoured), never a world-shared temp directory."""
    monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
    path = span_kernel._cache_path()
    assert str(path).startswith(str(tmp_path / "xdg"))
    assert path.parent == tmp_path / "xdg" / "repro" / "spankernel"


@pytest.mark.skipif(not hasattr(os, "getuid"), reason="POSIX-only check")
def test_kernel_trust_rejects_loose_permissions(tmp_path):
    private = tmp_path / "private.so"
    private.write_bytes(b"")
    os.chmod(private, 0o700)
    assert span_kernel._trusted(private)

    loose = tmp_path / "loose.so"
    loose.write_bytes(b"")
    os.chmod(loose, 0o770)  # group-writable: plantable by a co-member
    assert not span_kernel._trusted(loose)

    link = tmp_path / "link.so"
    link.symlink_to(private)
    assert not span_kernel._trusted(link)  # symlinks are never followed

    os.chmod(tmp_path, 0o700)
    assert span_kernel._trusted(tmp_path, want_dir=True)
    assert not span_kernel._trusted(tmp_path)  # wrong type for a .so
    assert not span_kernel._trusted(tmp_path / "absent.so")


@pytest.mark.skipif(not hasattr(os, "getuid"), reason="POSIX-only check")
def test_load_kernel_refuses_untrusted_cache(monkeypatch, tmp_path):
    """A pre-planted group-writable .so at the cache path is never CDLLed:
    load_kernel() must skip it and report the kernel unavailable."""
    monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
    planted = span_kernel._cache_path()
    planted.parent.mkdir(parents=True)
    planted.write_bytes(b"not a real shared object")
    os.chmod(planted, 0o770)
    monkeypatch.setattr(span_kernel, "_kernel", None)
    monkeypatch.setattr(span_kernel, "_kernel_tried", False)
    assert span_kernel.load_kernel() is None
