"""Cross-engine differential fuzzer.

The simulation engines (``reference``, ``batched``, ``array`` and, when the
optional dependency is installed, ``numpy``) promise bit-identical reports.  The hand-written equivalence suites check that
promise on the registered scenarios; this fuzzer checks it on ~50 *random*
configurations drawn from a seeded RNG — scheme, queue count, granularity,
SRAM/DRAM bounds, lossy/lossless mode, arrival process, arbiter and drain
mode all vary — so an engine refactor cannot silently special-case its way
past the curated scenarios.

Failures are reproducible: every case is generated from ``SEED`` (override
with ``REPRO_DIFFERENTIAL_SEED``; CI pins it) and carries its index in the
test id, and the failing case's full spec is printed by the assertion.
``REPRO_DIFFERENTIAL_CASES`` scales the case count (soak runs can raise it).
"""

import os
import random

import pytest

from repro.sim.numpy_engine import NUMPY_AVAILABLE
from repro.workloads.scenario import Scenario

SEED = int(os.environ.get("REPRO_DIFFERENTIAL_SEED", "20260729"))
NUM_CASES = int(os.environ.get("REPRO_DIFFERENTIAL_CASES", "50"))

# The numpy engine (vectorized plans + optional compiled span kernel) joins
# every leg when importable; its absence must not weaken the pure-python net.
ENGINES = (("reference", "batched", "array", "numpy")
           if NUMPY_AVAILABLE else ("reference", "batched", "array"))


def _arrival_spec(rng: random.Random, num_queues: int) -> dict:
    kind = rng.choice(["bernoulli", "bursty", "hotspot", "markov_on_off",
                       "pareto", "round_robin", "zipf", "trace",
                       "deterministic"])
    if kind == "bernoulli":
        params = {"num_queues": num_queues,
                  "load": rng.choice([0.3, 0.6, 0.85, 1.0])}
    elif kind == "bursty":
        params = {"num_queues": num_queues,
                  "mean_burst_cells": rng.choice([2.0, 8.0, 24.0]),
                  "load": rng.choice([0.5, 0.8, 1.0])}
    elif kind == "hotspot":
        hot = rng.sample(range(num_queues), k=max(1, num_queues // 4))
        params = {"num_queues": num_queues, "hot_queues": sorted(hot),
                  "hot_fraction": rng.choice([0.6, 0.9]),
                  "load": rng.choice([0.5, 0.9])}
    elif kind == "markov_on_off":
        params = {"num_queues": num_queues,
                  "mean_on_slots": rng.choice([5.0, 30.0]),
                  "mean_off_slots": rng.choice([10.0, 60.0]),
                  "peak_rate": rng.choice([0.5, 1.0])}
    elif kind == "pareto":
        params = {"num_queues": num_queues,
                  "alpha": rng.choice([1.2, 1.6, 2.5]),
                  "min_burst_cells": rng.choice([1, 4]),
                  "load": rng.choice([0.5, 0.8])}
    elif kind == "round_robin":
        params = {"num_queues": num_queues,
                  "load": rng.choice([0.7, 1.0])}
    elif kind == "zipf":
        params = {"num_queues": num_queues,
                  "exponent": rng.choice([0.8, 1.2, 2.0]),
                  "load": rng.choice([0.6, 0.95])}
    else:  # trace / deterministic: a canned random pattern
        length = rng.randint(40, 160)
        pattern = [rng.randrange(num_queues) if rng.random() < 0.7 else None
                   for _ in range(length)]
        if kind == "deterministic" and all(p is None for p in pattern):
            pattern[0] = 0  # DeterministicArrivals rejects empty patterns
        params = {"pattern": pattern}
    return {"type": kind, "params": params}


def _arbiter_spec(rng: random.Random, num_queues: int):
    kind = rng.choice(["longest_queue", "oldest_cell", "random",
                       "round_robin_adversary", "strided_adversary",
                       "intermittent", None])
    if kind is None:
        return None  # fill-only run
    if kind == "random":
        params = {"num_queues": num_queues,
                  "load": rng.choice([0.5, 0.9, 1.0])}
    elif kind == "strided_adversary":
        params = {"num_queues": num_queues,
                  "stride": rng.randint(1, num_queues),
                  "burst": rng.randint(1, 3)}
    elif kind == "intermittent":
        params = {"inner": {"type": "oldest_cell",
                            "params": {"num_queues": num_queues}},
                  "on_slots": rng.randint(1, 30),
                  "off_slots": rng.randint(0, 20)}
    else:
        params = {"num_queues": num_queues}
    return {"type": kind, "params": params}


def _buffer_spec(rng: random.Random, scheme: str, num_queues: int) -> dict:
    if scheme == "rads":
        buffer = {"num_queues": num_queues,
                  "granularity": rng.choice([1, 2, 3, 4, 6])}
        if rng.random() < 0.3:
            # A bounded DRAM with strictness off makes overflow drops legal
            # (a RADS-only mode: partial blocks drop, the rest is stored) —
            # the engines must agree on every dropped cell too.  CFDS defines
            # a bounded DRAM as strict on every engine; see
            # test_cfds_bounded_dram_raises_on_every_engine.
            buffer["strict"] = False
            buffer["dram_cells"] = rng.choice([8, 32, 128])
    else:
        b = rng.choice([1, 2, 4])
        big_b = b * rng.choice([2, 4])
        buffer = {"num_queues": num_queues,
                  "dram_access_slots": big_b,
                  "granularity": b,
                  "num_banks": (big_b // b) * rng.choice([2, 4, 8])}
    return buffer


def _generate_cases():
    rng = random.Random(SEED)
    cases = []
    for index in range(NUM_CASES):
        scheme = rng.choice(["rads", "cfds"])
        num_queues = rng.choice([1, 2, 3, 4, 8, 12])
        scenario = Scenario(
            name=f"fuzz-{index}",
            description="differential fuzzer case",
            scheme=scheme,
            buffer=_buffer_spec(rng, scheme, num_queues),
            arrivals=(_arrival_spec(rng, num_queues)
                      if rng.random() > 0.05 else None),
            arbiter=_arbiter_spec(rng, num_queues),
            num_slots=rng.randint(150, 500),
            seed=rng.randrange(2 ** 16),
        )
        cases.append((scenario, bool(rng.getrandbits(1))))  # (case, drain)
    return cases


CASES = _generate_cases()


@pytest.mark.parametrize(
    "scenario,drain", CASES,
    ids=[f"case{i}-{scn.scheme}-q{scn.buffer['num_queues']}"
         for i, (scn, _) in enumerate(CASES)])
def test_engines_bit_identical_on_random_config(scenario, drain):
    """Every statistic the report carries must match across all engines:
    throughput counters, the complete latency histogram, the buffer-side
    result (misses, drops, conflicts, peak occupancies) and the trace."""
    reports = {}
    for engine in ENGINES:
        sim = scenario.build_simulation(record_trace=True)
        reports[engine] = sim.run(scenario.num_slots, drain=drain,
                                  engine=engine)
    reference = reports["reference"]
    for engine in ENGINES[1:]:
        report = reports[engine]
        context = f"{engine} diverged on {scenario.to_spec()} drain={drain}"
        assert report.throughput == reference.throughput, context
        assert report.latency == reference.latency, context
        assert report.buffer_result == reference.buffer_result, context
        assert report.trace.events == reference.trace.events, context


def test_fuzzer_is_deterministic_per_seed():
    """The generated suite is a pure function of the seed — what CI pins is
    what a local repro runs."""
    first = [scn.to_spec() for scn, _ in _generate_cases()]
    second = [scn.to_spec() for scn, _ in _generate_cases()]
    assert first == second


def test_fuzzer_covers_both_schemes_and_lossy_configs():
    """Guards the generator itself: a distribution tweak must not silently
    stop exercising a whole scheme or the lossy path."""
    schemes = {scn.scheme for scn, _ in CASES}
    assert schemes == {"rads", "cfds"}
    assert any(scn.buffer.get("strict") is False for scn, _ in CASES)
    assert any(scn.arbiter is None for scn, _ in CASES)


def test_cfds_bounded_dram_raises_on_every_engine():
    """An asymmetry this fuzzer originally surfaced, pinned as a contract:
    CFDS treats a bounded DRAM as strict even with ``strict=False`` (only
    RADS defines non-strict overflow as counted drops), and all three
    engines agree on the failure."""
    from repro.errors import BufferOverflowError

    scenario = Scenario(
        name="cfds-bounded", description="", scheme="cfds",
        buffer={"num_queues": 2, "dram_access_slots": 4, "granularity": 2,
                "num_banks": 8, "strict": False, "dram_cells": 8},
        arrivals={"type": "round_robin",
                  "params": {"num_queues": 2, "load": 1.0}},
        arbiter=None,
        num_slots=200, seed=1)
    for engine in ENGINES:
        with pytest.raises(BufferOverflowError):
            scenario.build_simulation().run(scenario.num_slots, engine=engine)


# --------------------------------------------------------------------- #
# Streamed/chunked execution (ISSUE 5): random chunk boundaries, warmup
# offsets and checkpoint/resume points must all reproduce the monolithic
# run's report bit-identically.
# --------------------------------------------------------------------- #

#: Every Nth fuzzer case also runs through the streaming paths (the full
#: matrix would triple the suite's runtime for no extra coverage of the
#: engines themselves).
STREAM_CASES = [(index, scenario, drain)
                for index, (scenario, drain) in enumerate(CASES)][::5]
_STREAM_IDS = [f"case{index}-{scenario.scheme}"
               for index, scenario, _ in STREAM_CASES]


def _stream_rng(index: int) -> random.Random:
    return random.Random(SEED * 1_000_003 + index)


def _drive(session, stop_slot):
    arrivals = session.sim.arrivals
    while session.slot < stop_slot:
        count = min(session.chunk_slots, stop_slot - session.slot)
        if arrivals is not None:
            window = arrivals.arrivals_slice(session.slot, count)
            plan = window if isinstance(window, list) else list(window)
        else:
            plan = [None] * count
        session._execute(plan)


@pytest.mark.parametrize("index,scenario,drain", STREAM_CASES,
                         ids=_STREAM_IDS)
def test_streamed_chunks_bit_identical_on_random_config(index, scenario,
                                                        drain):
    """Random chunk boundaries on every engine vs the monolithic reference
    loop — the full report, trace included."""
    from repro.sim.streaming import StreamingSimulation

    rng = _stream_rng(index)
    reference = scenario.build_simulation(record_trace=True)
    baseline = reference.run(scenario.num_slots, drain=drain,
                             engine="reference")
    for engine in ENGINES:
        chunk = rng.randint(1, scenario.num_slots + 17)
        sim = scenario.build_simulation(record_trace=True)
        report = StreamingSimulation(sim, scenario.num_slots, engine=engine,
                                     drain=drain, chunk_slots=chunk).run()
        context = (f"streamed {engine} chunk={chunk} diverged on "
                   f"{scenario.to_spec()} drain={drain}")
        assert report.throughput == baseline.throughput, context
        assert report.latency == baseline.latency, context
        assert report.buffer_result == baseline.buffer_result, context
        assert report.trace.events == baseline.trace.events, context


@pytest.mark.parametrize("index,scenario,drain", STREAM_CASES[::2],
                         ids=_STREAM_IDS[::2])
def test_checkpoint_resume_bit_identical_on_random_config(index, scenario,
                                                          drain, tmp_path):
    """A snapshot at a random mid-run slot, resumed from disk, must finish
    bit-identically to the uninterrupted streamed run on every engine."""
    from repro.sim.streaming import StreamingSimulation, resume_stream

    rng = _stream_rng(index ^ 0x5A5A)
    for engine in ENGINES:
        chunk = rng.randint(1, scenario.num_slots)
        uninterrupted = StreamingSimulation(
            scenario.build_simulation(), scenario.num_slots, engine=engine,
            drain=drain, chunk_slots=chunk).run()
        session = StreamingSimulation(
            scenario.build_simulation(), scenario.num_slots, engine=engine,
            drain=drain, chunk_slots=chunk)
        _drive(session, rng.randint(0, scenario.num_slots))
        path = tmp_path / f"case{index}-{engine}.ckpt.json"
        session.save_checkpoint(path)
        resumed = resume_stream(path)
        context = (f"resume({engine}, chunk={chunk}) diverged on "
                   f"{scenario.to_spec()} drain={drain}")
        assert resumed.throughput == uninterrupted.throughput, context
        assert resumed.latency == uninterrupted.latency, context
        assert resumed.buffer_result == uninterrupted.buffer_result, context


@pytest.mark.parametrize("index,scenario,drain", STREAM_CASES[1::2],
                         ids=_STREAM_IDS[1::2])
def test_warmup_chunk_invariant_on_random_config(index, scenario, drain):
    """A random warmup offset must produce one well-defined report: the
    same for every chunking and engine."""
    from repro.sim.streaming import StreamingSimulation

    rng = _stream_rng(index ^ 0xC3C3)
    warmup = rng.randint(0, scenario.num_slots)
    baseline = None
    for engine in ENGINES:
        chunk = rng.randint(1, scenario.num_slots + 17)
        report = StreamingSimulation(
            scenario.build_simulation(), scenario.num_slots, engine=engine,
            drain=drain, chunk_slots=chunk,
            warmup_slots=warmup).run()
        if baseline is None:
            baseline = report
            continue
        context = (f"warmup={warmup} {engine} chunk={chunk} diverged on "
                   f"{scenario.to_spec()} drain={drain}")
        assert report.throughput == baseline.throughput, context
        assert report.latency == baseline.latency, context
        assert report.buffer_result == baseline.buffer_result, context
