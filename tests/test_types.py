"""Tests for the shared value types."""

import pytest

from repro.types import (
    Cell,
    CellRequest,
    MissRecord,
    ReplenishRequest,
    SimulationResult,
    TransferDirection,
    TransferJob,
)


class TestCell:
    def test_defaults(self):
        cell = Cell(queue=3, seqno=7)
        assert cell.queue == 3
        assert cell.seqno == 7
        assert cell.packet_id is None
        assert cell.last is True

    def test_cells_are_immutable(self):
        cell = Cell(queue=0, seqno=0)
        with pytest.raises(AttributeError):
            cell.queue = 5

    def test_equality_by_value(self):
        assert Cell(queue=1, seqno=2) == Cell(queue=1, seqno=2)
        assert Cell(queue=1, seqno=2) != Cell(queue=1, seqno=3)


class TestReplenishRequest:
    def test_requires_positive_cell_count(self):
        with pytest.raises(ValueError):
            ReplenishRequest(queue=0, direction=TransferDirection.READ,
                             cells=0, issue_slot=0)

    def test_carries_block_index(self):
        request = ReplenishRequest(queue=2, direction=TransferDirection.WRITE,
                                   cells=4, issue_slot=10, block_index=5)
        assert request.block_index == 5
        assert request.direction is TransferDirection.WRITE


class TestTransferJob:
    def test_duration(self):
        request = ReplenishRequest(queue=0, direction=TransferDirection.READ,
                                   cells=2, issue_slot=0)
        job = TransferJob(request=request, bank=3, start_slot=10, finish_slot=18)
        assert job.duration == 8


class TestSimulationResult:
    def test_zero_miss_property(self):
        result = SimulationResult()
        assert result.zero_miss is True
        assert result.miss_count == 0
        result.misses.append(MissRecord(queue=1, slot=5))
        assert result.zero_miss is False
        assert result.miss_count == 1

    def test_request_type(self):
        request = CellRequest(queue=4, issue_slot=9)
        assert request.queue == 4
        assert request.issue_slot == 9
