"""Test suite for the repro packet-buffer reproduction."""
