"""Property-based tests of the zero-miss guarantee (the paper's central claim).

The head subsystem — RADS or CFDS — must never miss for *any* request
sequence when dimensioned by the paper's formulas.  Hypothesis generates
arbitrary admissible request sequences (including idle slots); the round-robin
adversary from Section 3 is covered separately by deterministic tests.
"""

from hypothesis import given, settings, strategies as st

from repro.core.config import CFDSConfig
from repro.core.head_buffer import CFDSHeadBuffer
from repro.rads.config import RADSConfig
from repro.rads.head_buffer import RADSHeadBuffer


def _request_sequences(num_queues: int, length: int):
    return st.lists(
        st.one_of(st.none(), st.integers(min_value=0, max_value=num_queues - 1)),
        min_size=length, max_size=length)


class TestRADSZeroMissProperty:
    @given(_request_sequences(num_queues=5, length=400))
    @settings(max_examples=40, deadline=None)
    def test_any_request_pattern_is_served_without_miss(self, requests):
        config = RADSConfig(num_queues=5, granularity=3)
        buffer = RADSHeadBuffer(config)
        result = buffer.run(requests)
        assert result.zero_miss
        assert result.cells_out == sum(1 for r in requests if r is not None)

    @given(_request_sequences(num_queues=3, length=300),
           st.integers(min_value=2, max_value=5))
    @settings(max_examples=30, deadline=None)
    def test_guarantee_holds_across_granularities(self, requests, granularity):
        config = RADSConfig(num_queues=3, granularity=granularity)
        buffer = RADSHeadBuffer(config)
        result = buffer.run(requests)
        assert result.zero_miss

    @given(_request_sequences(num_queues=4, length=400))
    @settings(max_examples=30, deadline=None)
    def test_sram_never_exceeds_configured_capacity(self, requests):
        config = RADSConfig(num_queues=4, granularity=4)
        buffer = RADSHeadBuffer(config)
        result = buffer.run(requests)
        assert result.max_head_sram_occupancy <= config.effective_head_sram_cells


class TestCFDSZeroMissProperty:
    @given(_request_sequences(num_queues=8, length=500))
    @settings(max_examples=30, deadline=None)
    def test_any_request_pattern_is_served_without_miss(self, requests):
        config = CFDSConfig(num_queues=8, dram_access_slots=8, granularity=2, num_banks=32)
        buffer = CFDSHeadBuffer(config)
        result = buffer.run(requests)
        assert result.zero_miss
        assert result.bank_conflicts == 0
        assert result.cells_out == sum(1 for r in requests if r is not None)

    @given(_request_sequences(num_queues=6, length=400),
           st.sampled_from([(8, 2), (8, 4), (4, 2), (16, 4)]))
    @settings(max_examples=25, deadline=None)
    def test_guarantee_holds_across_geometries(self, requests, geometry):
        big_b, b = geometry
        config = CFDSConfig(num_queues=6, dram_access_slots=big_b, granularity=b,
                            num_banks=big_b // b * 8)
        buffer = CFDSHeadBuffer(config)
        result = buffer.run(requests)
        assert result.zero_miss
        assert result.bank_conflicts == 0

    @given(_request_sequences(num_queues=8, length=400))
    @settings(max_examples=25, deadline=None)
    def test_reordering_structures_stay_within_bounds(self, requests):
        config = CFDSConfig(num_queues=8, dram_access_slots=8, granularity=2, num_banks=32)
        buffer = CFDSHeadBuffer(config)
        result = buffer.run(requests)
        assert result.max_request_register_occupancy <= config.effective_rr_capacity
        assert result.max_head_sram_occupancy <= config.effective_head_sram_cells
