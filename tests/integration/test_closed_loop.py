"""Closed-loop integration tests: full buffers under realistic traffic."""

import pytest

from repro.core.buffer import CFDSPacketBuffer
from repro.core.config import CFDSConfig
from repro.rads.buffer import RADSPacketBuffer
from repro.rads.config import RADSConfig
from repro.sim.engine import ClosedLoopSimulation
from repro.traffic.arbiters import (
    LongestQueueArbiter,
    OldestCellArbiter,
    RandomArbiter,
)
from repro.traffic.arrivals import (
    BernoulliArrivals,
    BurstyArrivals,
    HotspotArrivals,
    RoundRobinArrivals,
)

TRAFFIC_MIXES = [
    ("bernoulli-random", lambda n, s: BernoulliArrivals(n, load=0.9, seed=s),
     lambda n: RandomArbiter(n, load=0.95, seed=99)),
    ("bursty-longest", lambda n, s: BurstyArrivals(n, mean_burst_cells=20, load=0.9, seed=s),
     lambda n: LongestQueueArbiter(n)),
    ("hotspot-oldest", lambda n, s: HotspotArrivals(n, hot_queues=[0, 1], hot_fraction=0.7,
                                                    load=0.9, seed=s),
     lambda n: OldestCellArbiter(n)),
    ("roundrobin-oldest", lambda n, s: RoundRobinArrivals(n, load=1.0, seed=s),
     lambda n: OldestCellArbiter(n)),
]


@pytest.mark.parametrize("name,make_arrivals,make_arbiter", TRAFFIC_MIXES,
                         ids=[t[0] for t in TRAFFIC_MIXES])
class TestRADSClosedLoop:
    def test_no_miss_no_loss_and_work_conserving(self, name, make_arrivals, make_arbiter):
        config = RADSConfig(num_queues=8, granularity=4)
        buffer = RADSPacketBuffer(config)
        report = ClosedLoopSimulation(buffer, make_arrivals(8, 7), make_arbiter(8)).run(4000)
        assert report.zero_miss
        assert report.throughput.drops == 0
        assert report.throughput.departures > 0.85 * report.throughput.arrivals


@pytest.mark.parametrize("name,make_arrivals,make_arbiter", TRAFFIC_MIXES,
                         ids=[t[0] for t in TRAFFIC_MIXES])
class TestCFDSClosedLoop:
    def test_no_miss_no_conflict_and_work_conserving(self, name, make_arrivals, make_arbiter):
        config = CFDSConfig(num_queues=8, dram_access_slots=8, granularity=2, num_banks=32)
        buffer = CFDSPacketBuffer(config)
        report = ClosedLoopSimulation(buffer, make_arrivals(8, 11), make_arbiter(8)).run(4000)
        assert report.zero_miss
        assert report.buffer_result.bank_conflicts == 0
        assert report.throughput.departures > 0.85 * report.throughput.arrivals


class TestDelayAccounting:
    def test_cfds_delay_exceeds_rads_by_the_latency_register(self):
        """CFDS buys its smaller SRAM with extra pipeline delay: the minimum
        cell delay grows by exactly the latency register length."""
        rads_config = RADSConfig(num_queues=8, granularity=4)
        cfds_config = CFDSConfig(num_queues=8, dram_access_slots=8, granularity=2,
                                 num_banks=32)
        rads = RADSPacketBuffer(rads_config)
        cfds = CFDSPacketBuffer(cfds_config)
        rads_report = ClosedLoopSimulation(
            rads, BernoulliArrivals(8, load=0.5, seed=3),
            RandomArbiter(8, load=0.6, seed=4)).run(3000)
        cfds_report = ClosedLoopSimulation(
            cfds, BernoulliArrivals(8, load=0.5, seed=3),
            RandomArbiter(8, load=0.6, seed=4)).run(3000)
        assert rads_report.latency.minimum >= rads_config.effective_lookahead
        assert cfds_report.latency.minimum >= (cfds_config.effective_lookahead
                                               + cfds_config.effective_latency)

    def test_throughput_statistics_are_consistent(self):
        config = CFDSConfig(num_queues=4, dram_access_slots=4, granularity=2, num_banks=16)
        buffer = CFDSPacketBuffer(config)
        report = ClosedLoopSimulation(buffer,
                                      BernoulliArrivals(4, load=0.6, seed=8),
                                      OldestCellArbiter(4)).run(2000)
        assert report.latency.count == report.throughput.departures
        assert report.throughput.slots >= 2000
