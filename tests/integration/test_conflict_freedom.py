"""Property-based tests of the conflict-freedom guarantee.

The DRAM Scheduler Subsystem must never start an access on a bank that is
still busy, whatever mix of read and write block requests the two MMAs throw
at it — that is what "Conflict-Free DRAM System" means.  The banked-DRAM
timing model raises on any true overlap, so simply running the scheduler in
strict mode is the oracle.
"""

from hypothesis import given, settings, strategies as st

from repro.core.config import CFDSConfig
from repro.core.scheduler import DRAMSchedulerSubsystem
from repro.types import ReplenishRequest, TransferDirection


def _workloads(num_queues: int, periods: int):
    """Per period: an optional read queue and an optional write queue."""
    item = st.tuples(
        st.one_of(st.none(), st.integers(min_value=0, max_value=num_queues - 1)),
        st.one_of(st.none(), st.integers(min_value=0, max_value=num_queues - 1)))
    return st.lists(item, min_size=periods, max_size=periods)


class TestConflictFreedom:
    @given(_workloads(num_queues=16, periods=150))
    @settings(max_examples=40, deadline=None)
    def test_no_bank_is_ever_accessed_while_busy(self, workload):
        config = CFDSConfig(num_queues=16, dram_access_slots=8, granularity=2,
                            num_banks=32, rr_capacity=None)
        dss = DRAMSchedulerSubsystem(config, issues_per_period=2)
        read_blocks = {q: 0 for q in range(16)}
        write_blocks = {q: 0 for q in range(16)}
        slot = 0
        for read_queue, write_queue in workload:
            if read_queue is not None:
                dss.submit(ReplenishRequest(queue=read_queue,
                                            direction=TransferDirection.READ,
                                            cells=2, issue_slot=slot,
                                            block_index=read_blocks[read_queue]))
                read_blocks[read_queue] += 1
            if write_queue is not None:
                dss.submit(ReplenishRequest(queue=write_queue,
                                            direction=TransferDirection.WRITE,
                                            cells=2, issue_slot=slot,
                                            block_index=write_blocks[write_queue]))
                write_blocks[write_queue] += 1
            for _ in range(config.granularity):
                dss.tick(slot)
                slot += 1
        # Drain everything that is still pending.
        guard = 0
        while (dss.pending_count or dss.in_flight_count) and guard < 10_000:
            dss.tick(slot)
            slot += 1
            guard += 1
        assert dss.bank_conflicts == 0
        assert dss.pending_count == 0

    @given(st.integers(min_value=0, max_value=15), st.integers(min_value=1, max_value=40))
    @settings(max_examples=30, deadline=None)
    def test_single_queue_burst_never_conflicts(self, queue, blocks):
        """Back-to-back blocks of one queue rotate over its group's banks and
        must schedule without conflicts (block-cyclic interleaving at work)."""
        config = CFDSConfig(num_queues=16, dram_access_slots=8, granularity=2,
                            num_banks=32, rr_capacity=None)
        dss = DRAMSchedulerSubsystem(config)
        slot = 0
        for block in range(blocks):
            dss.submit(ReplenishRequest(queue=queue, direction=TransferDirection.READ,
                                        cells=2, issue_slot=slot, block_index=block))
            for _ in range(config.granularity):
                dss.tick(slot)
                slot += 1
        for _ in range(200):
            dss.tick(slot)
            slot += 1
        assert dss.bank_conflicts == 0
        assert dss.in_flight_count == 0
        assert dss.pending_count == 0


class TestInterleavingAblation:
    def test_naive_mapping_would_conflict_without_the_scheduler(self):
        """Sanity check of why the DSA matters: if requests were issued
        strictly FIFO regardless of bank state (no wake-up/select), the
        round-robin-within-a-queue pattern would hit a busy bank."""
        from repro.core.mapping import CFDSBankMapping
        from repro.dram.dram import BankedDRAM
        from repro.dram.timing import DRAMTiming
        from repro.errors import BankConflictError
        from repro.types import ReplenishRequest

        mapping = CFDSBankMapping(num_queues=16, num_banks=32,
                                  dram_access_slots=8, granularity=2)
        dram = BankedDRAM(DRAMTiming(random_access_slots=4, num_banks=32))
        # Two queues of the same group requesting the same block ordinal twice
        # in consecutive periods: FIFO issue hits the same bank while busy.
        queue_a, queue_b = 0, 8
        assert mapping.group_of(queue_a) == mapping.group_of(queue_b)
        request = ReplenishRequest(queue=queue_a, direction=TransferDirection.READ,
                                   cells=2, issue_slot=0, block_index=0)
        dram.start_access(request, mapping.bank_of(queue_a, 0).bank, 0)
        with_conflict = ReplenishRequest(queue=queue_b, direction=TransferDirection.READ,
                                         cells=2, issue_slot=2, block_index=0)
        try:
            dram.start_access(with_conflict, mapping.bank_of(queue_b, 0).bank, 2)
            conflicted = False
        except BankConflictError:
            conflicted = True
        assert conflicted
