"""End-to-end packet path: segmentation -> CFDS buffer -> reassembly.

This exercises the whole system the way a line card would use it: variable
size packets are segmented into cells, buffered, scheduled out and reassembled
— and every packet must come out intact with its cells in order.
"""

import random

from repro.core.buffer import CFDSPacketBuffer
from repro.core.config import CFDSConfig
from repro.traffic.packet import Packet
from repro.traffic.segmentation import Reassembler, Segmenter


class TestPacketPath:
    def test_packets_survive_the_buffer_intact(self):
        rng = random.Random(1234)
        num_queues = 4
        config = CFDSConfig(num_queues=num_queues, dram_access_slots=8,
                            granularity=2, num_banks=32)
        buffer = CFDSPacketBuffer(config)
        segmenter = Segmenter(num_queues)
        reassembler = Reassembler()

        # Build a workload of packets and flatten it into per-queue cell FIFOs.
        packets = [Packet(packet_id=i, queue=rng.randrange(num_queues),
                          size_bytes=rng.choice([40, 64, 200, 576, 1500]))
                   for i in range(60)]
        pending_cells = []
        for packet in packets:
            pending_cells.extend(segmenter.segment(packet))

        sent_per_queue = {q: 0 for q in range(num_queues)}
        completed = []
        slot_cell_iter = iter(pending_cells)
        next_cell = next(slot_cell_iter, None)
        served_count = 0
        total_cells = len(pending_cells)

        while served_count < total_cells:
            arrival_queue = None
            if next_cell is not None:
                arrival_queue = next_cell.queue
            # Request the queue with the largest unserved backlog.
            backlogs = {q: buffer.backlog(q) for q in range(num_queues)}
            request_queue = max(backlogs, key=backlogs.get)
            if backlogs[request_queue] == 0:
                request_queue = None
            served = buffer.step(arrival_queue, request_queue)
            if arrival_queue is not None:
                sent_per_queue[arrival_queue] += 1
                next_cell = next(slot_cell_iter, None)
            if served is not None:
                served_count += 1
                # Map the buffer's synthetic cell back to the original cell of
                # that queue (the buffer preserves per-queue FIFO order).
                original = _nth_cell_of_queue(pending_cells, served.queue, served.seqno)
                packet = reassembler.push(original)
                if packet is not None:
                    completed.append(packet.packet_id)

        assert reassembler.out_of_order_events == 0
        assert sorted(completed) == sorted(p.packet_id for p in packets)


def _nth_cell_of_queue(cells, queue, seqno):
    for cell in cells:
        if cell.queue == queue and cell.seqno == seqno:
            return cell
    raise AssertionError(f"cell {seqno} of queue {queue} not found")
