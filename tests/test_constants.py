"""Tests for repro.constants: slot times, granularities, helpers."""


import pytest

from repro import constants


class TestSlotTime:
    def test_oc3072_slot_is_3_2_ns(self):
        assert constants.slot_time_ns(constants.OC_LINE_RATES_BPS["OC-3072"]) == pytest.approx(3.2)

    def test_oc768_slot_is_12_8_ns(self):
        assert constants.slot_time_ns(constants.OC_LINE_RATES_BPS["OC-768"]) == pytest.approx(12.8)

    def test_oc192_slot_is_51_2_ns(self):
        assert constants.slot_time_ns(constants.OC_LINE_RATES_BPS["OC-192"]) == pytest.approx(51.2)

    def test_slot_time_seconds_consistent_with_ns(self):
        rate = constants.OC_LINE_RATES_BPS["OC-768"]
        assert constants.slot_time_s(rate) == pytest.approx(constants.slot_time_ns(rate) * 1e-9)

    def test_rejects_non_positive_rate(self):
        with pytest.raises(ValueError):
            constants.slot_time_s(0)
        with pytest.raises(ValueError):
            constants.slot_time_ns(-1)


class TestRadsGranularity:
    def test_paper_value_for_oc768(self):
        assert constants.rads_granularity(constants.OC_LINE_RATES_BPS["OC-768"]) == 8

    def test_paper_value_for_oc3072(self):
        assert constants.rads_granularity(constants.OC_LINE_RATES_BPS["OC-3072"]) == 32

    def test_without_power_of_two_rounding(self):
        value = constants.rads_granularity(constants.OC_LINE_RATES_BPS["OC-768"],
                                           round_to_power_of_two=False)
        assert value == 8  # ceil(48 / 6.4) = 8 already

    def test_faster_dram_reduces_granularity(self):
        slow = constants.rads_granularity(constants.OC_LINE_RATES_BPS["OC-3072"], 48.0)
        fast = constants.rads_granularity(constants.OC_LINE_RATES_BPS["OC-3072"], 20.0)
        assert fast < slow

    def test_rejects_non_positive_access_time(self):
        with pytest.raises(ValueError):
            constants.rads_granularity(40e9, 0.0)


class TestBufferSize:
    def test_paper_rule_of_thumb_4gb_at_oc3072(self):
        size = constants.required_buffer_bytes(constants.OC_LINE_RATES_BPS["OC-3072"])
        assert size == pytest.approx(4e9, rel=0.01)

    def test_scales_linearly_with_rtt(self):
        rate = constants.OC_LINE_RATES_BPS["OC-768"]
        assert constants.required_buffer_bytes(rate, 0.4) == pytest.approx(
            2 * constants.required_buffer_bytes(rate, 0.2), rel=1e-9)

    def test_rejects_non_positive_rtt(self):
        with pytest.raises(ValueError):
            constants.required_buffer_bytes(1e9, 0)


class TestPowerOfTwoHelpers:
    @pytest.mark.parametrize("value,expected", [(0, 1), (1, 1), (2, 2), (3, 4),
                                                (5, 8), (8, 8), (9, 16), (1000, 1024)])
    def test_next_power_of_two(self, value, expected):
        assert constants.next_power_of_two(value) == expected

    def test_next_power_of_two_rejects_negative(self):
        with pytest.raises(ValueError):
            constants.next_power_of_two(-1)

    @pytest.mark.parametrize("value,expected", [(1, True), (2, True), (3, False),
                                                (0, False), (-4, False), (64, True)])
    def test_is_power_of_two(self, value, expected):
        assert constants.is_power_of_two(value) is expected


class TestPaperParameters:
    def test_paper_queue_counts(self):
        assert constants.PAPER_QUEUES["OC-768"] == 128
        assert constants.PAPER_QUEUES["OC-3072"] == 512

    def test_paper_granularities(self):
        assert constants.PAPER_GRANULARITY["OC-768"] == 8
        assert constants.PAPER_GRANULARITY["OC-3072"] == 32

    def test_cell_size(self):
        assert constants.CELL_SIZE_BYTES == 64
        assert constants.CELL_SIZE_BITS == 512
