"""Tests for the Scenario dataclass, the spec round-trip and the registry."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.runner.serialize import from_jsonable, to_jsonable
from repro.traffic.arbiters import IntermittentArbiter, OldestCellArbiter
from repro.workloads import (
    Scenario,
    ScenarioResult,
    all_scenarios,
    get_scenario,
    register_scenario,
    run_scenario_spec,
    scenario_names,
)
from repro.workloads.registry import _REGISTRY


def _simple_scenario(**overrides) -> Scenario:
    fields = dict(
        name="test-simple",
        description="a small test scenario",
        scheme="rads",
        buffer={"num_queues": 4, "granularity": 3},
        arrivals={"type": "bernoulli", "params": {"num_queues": 4, "load": 0.7}},
        arbiter={"type": "oldest_cell", "params": {"num_queues": 4}},
        num_slots=400,
        seed=5,
        tags=("test",),
    )
    fields.update(overrides)
    return Scenario(**fields)


class TestScenario:
    def test_spec_round_trip_is_lossless_and_json(self):
        scenario = _simple_scenario()
        spec = scenario.to_spec()
        json.dumps(spec)  # must be JSON-serialisable for the runner cache
        assert Scenario.from_spec(spec) == scenario

    def test_every_registered_scenario_round_trips(self):
        for scenario in all_scenarios():
            spec = scenario.to_spec()
            json.dumps(spec)
            assert Scenario.from_spec(spec) == scenario

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ConfigurationError):
            _simple_scenario(scheme="sram-only")

    def test_unknown_generator_type_rejected(self):
        scenario = _simple_scenario(arrivals={"type": "fractal", "params": {}})
        with pytest.raises(ConfigurationError):
            scenario.build_arrivals()

    def test_missing_spec_key_rejected(self):
        with pytest.raises(ConfigurationError):
            Scenario.from_spec({"name": "x", "scheme": "rads"})

    def test_seed_is_injected_into_generators(self):
        seeded_a = _simple_scenario(seed=1).build_arrivals()
        seeded_b = _simple_scenario(seed=2).build_arrivals()
        # Different scenario seeds must produce different streams.
        stream_a = [seeded_a.next_arrival(s) for s in range(200)]
        stream_b = [seeded_b.next_arrival(s) for s in range(200)]
        assert stream_a != stream_b

    def test_explicit_generator_seed_wins(self):
        spec = {"type": "bernoulli",
                "params": {"num_queues": 4, "load": 0.7, "seed": 9}}
        one = _simple_scenario(arrivals=spec, seed=1).build_arrivals()
        two = _simple_scenario(arrivals=spec, seed=2).build_arrivals()
        assert [one.next_arrival(s) for s in range(200)] == \
               [two.next_arrival(s) for s in range(200)]

    def test_nested_arbiter_spec_builds_recursively(self):
        scenario = _simple_scenario(
            arbiter={"type": "intermittent",
                     "params": {"inner": {"type": "oldest_cell",
                                          "params": {"num_queues": 4}},
                                "on_slots": 5, "off_slots": 3}})
        arbiter = scenario.build_arbiter()
        assert isinstance(arbiter, IntermittentArbiter)
        assert isinstance(arbiter.inner, OldestCellArbiter)
        # ... and the nested spec still round-trips.
        assert Scenario.from_spec(scenario.to_spec()) == scenario

    def test_run_produces_consistent_report(self):
        report = _simple_scenario().run()
        assert report.throughput.arrivals >= report.throughput.departures
        assert report.latency.count == report.throughput.departures
        assert report.zero_miss

    def test_run_is_deterministic(self):
        first = _simple_scenario().run()
        second = _simple_scenario().run()
        assert first.throughput == second.throughput
        assert first.latency == second.latency


class TestRegistry:
    def test_at_least_eight_scenarios_spanning_all_families(self):
        names = scenario_names()
        assert len(names) >= 8
        for tag in ("bursty", "hotspot", "adversarial", "replay"):
            assert scenario_names(tag=tag), f"no scenario tagged {tag!r}"

    def test_schemes_are_both_covered(self):
        schemes = {scenario.scheme for scenario in all_scenarios()}
        assert schemes == {"rads", "cfds"}

    def test_get_scenario_unknown_name(self):
        with pytest.raises(ConfigurationError):
            get_scenario("no-such-scenario")

    def test_duplicate_registration_rejected_unless_replace(self):
        scenario = all_scenarios()[0]
        with pytest.raises(ConfigurationError):
            register_scenario(scenario)
        register_scenario(scenario, replace=True)  # idempotent with replace

    def test_registration_is_visible_then_removable(self):
        scenario = _simple_scenario(name="test-registered")
        register_scenario(scenario)
        try:
            assert get_scenario("test-registered") == scenario
            assert "test-registered" in scenario_names()
        finally:
            del _REGISTRY["test-registered"]


class TestScenarioResult:
    def test_run_scenario_spec_executes_from_plain_dict(self):
        spec = json.loads(json.dumps(_simple_scenario().to_spec()))
        result = run_scenario_spec(spec)
        assert isinstance(result, ScenarioResult)
        assert result.name == "test-simple"
        assert result.scheme == "rads"
        assert result.departures > 0
        assert result.latency_p50 <= result.latency_p95 <= result.latency_p99

    def test_result_survives_the_cache_serialisation(self):
        result = run_scenario_spec(_simple_scenario().to_spec())
        round_tripped = from_jsonable(json.loads(json.dumps(to_jsonable(result))))
        assert round_tripped == result

    def test_fast_and_legacy_paths_agree(self):
        spec = _simple_scenario().to_spec()
        assert run_scenario_spec(spec, fast_path=True) == \
               run_scenario_spec(spec, fast_path=False)
