"""Golden-report regression fixtures.

Every registered single-port scenario has a committed JSON snapshot of its
``SimulationReport.summary()`` under ``tests/fixtures/golden/``.  The
cross-engine tests prove the three engines agree *with each other*; these
fixtures prove they agree *with the past* — an engine refactor that shifts
behaviour consistently across all engines (and so passes every equivalence
test) still cannot drift silently.

After an intentional behaviour change, regenerate with::

    python -m pytest tests/workloads/test_golden.py --update-golden

and review the fixture diff like any other code change.
"""

import json
from pathlib import Path

import pytest

from repro.workloads.registry import get_scenario, scenario_names

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "fixtures" / "golden"


def _canonical(summary):
    """The summary as it round-trips through JSON (tuples become lists,
    float repr normalises) — what a committed fixture can actually store."""
    return json.loads(json.dumps(summary, sort_keys=True))


@pytest.mark.parametrize("name", scenario_names())
def test_summary_matches_golden_fixture(name, request):
    scenario = get_scenario(name)
    summary = _canonical(scenario.run().summary())
    path = GOLDEN_DIR / f"{name}.json"
    if request.config.getoption("--update-golden"):
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
        pytest.skip(f"golden fixture rewritten: {path}")
    assert path.exists(), (
        f"no golden fixture for scenario {name!r}; run "
        f"pytest tests/workloads/test_golden.py --update-golden and commit "
        f"{path}")
    stored = json.loads(path.read_text(encoding="utf-8"))
    assert summary == stored, (
        f"scenario {name!r} drifted from its golden fixture {path}; if the "
        f"change is intentional, regenerate with --update-golden and review "
        f"the diff")


def test_no_orphaned_golden_fixtures():
    """Every fixture corresponds to a registered scenario — fixtures for
    deleted scenarios would otherwise linger and rot."""
    fixtures = {p.stem for p in GOLDEN_DIR.glob("*.json")}
    assert fixtures <= set(scenario_names()), (
        f"orphaned golden fixtures: {sorted(fixtures - set(scenario_names()))}")


def test_golden_fixtures_are_engine_independent():
    """The fixture pins *behaviour*, not an engine: any engine's summary
    must match it (spot-checked on one scenario per scheme)."""
    for name in ("uniform-bernoulli", "markov-onoff"):
        scenario = get_scenario(name)
        stored = json.loads(
            (GOLDEN_DIR / f"{name}.json").read_text(encoding="utf-8"))
        for engine in ("reference", "array"):
            assert _canonical(scenario.run(engine=engine).summary()) == stored
