"""The YAML sweep front end: parsing, grid expansion, validation errors
that name the document path, canonical round-trips, and execution through
the real sweep runner."""

import json
from pathlib import Path

import pytest

from repro.errors import SpecError
from repro.runner.sweep import SweepRunner
from repro.switch.scenario import SwitchScenario
from repro.workloads.scenario import Scenario
from repro.workloads.spec_yaml import (
    SCENARIO_JOB_FUNC,
    SWITCH_JOB_FUNC,
    compile_jobs,
    dump_yaml_document,
    expand_document,
    load_yaml_document,
    parse_document,
)

yaml = pytest.importorskip("yaml")

EXAMPLES = Path(__file__).resolve().parent.parent.parent / "examples"

BASE_SPEC = {
    "scheme": "rads",
    "buffer": {"num_queues": 4, "granularity": 2},
    "arrivals": {"type": "bernoulli",
                 "params": {"num_queues": 4, "load": 0.8}},
    "arbiter": {"type": "oldest_cell", "params": {"num_queues": 4}},
    "num_slots": 300,
    "seed": 3,
}

SWITCH_SPEC = {
    "num_ports": 4,
    "traffic": {"type": "bernoulli", "params": {"load": 0.6}},
    "fabric": {"type": "islip", "params": {}},
    "ports": [{"scheme": "rads", "buffer": {"granularity": 2},
               "arbiter": {"type": "oldest_cell", "params": {}}}],
    "num_slots": 200,
    "seed": 5,
}


def _doc(**overrides):
    document = {"kind": "scenario", "name": "t", "spec": dict(BASE_SPEC)}
    document.update(overrides)
    return document


# --------------------------------------------------------------------- #
# Parsing and validation errors
# --------------------------------------------------------------------- #

class TestParseDocument:
    def test_minimal_document_parses(self):
        doc = parse_document(_doc())
        assert doc.kind == "scenario"
        assert doc.name == "t"
        assert doc.grid == {}

    def test_non_mapping_document_rejected(self):
        with pytest.raises(SpecError, match="must be a mapping"):
            parse_document(["not", "a", "doc"], source="sweep.yaml")

    def test_unknown_top_level_key_named(self):
        with pytest.raises(SpecError, match="'gird'"):
            parse_document(_doc(gird={}), source="sweep.yaml")

    def test_bad_kind_named(self):
        with pytest.raises(SpecError, match="'kind'.*'switchh'"):
            parse_document(_doc(kind="switchh"))

    def test_missing_spec_rejected(self):
        with pytest.raises(SpecError, match="'spec'"):
            parse_document({"kind": "scenario", "name": "t"})

    def test_error_names_the_source(self):
        with pytest.raises(SpecError, match="my-sweep.yaml"):
            parse_document({"kind": "nope"}, source="my-sweep.yaml")

    def test_grid_axis_with_non_list_rejected(self):
        with pytest.raises(SpecError, match=r"grid\['seed'\]"):
            parse_document(_doc(grid={"seed": 3}))

    def test_grid_axis_with_empty_list_rejected(self):
        with pytest.raises(SpecError, match=r"grid\['seed'\].*empty"):
            parse_document(_doc(grid={"seed": []}))

    def test_unknown_run_option_named(self):
        with pytest.raises(SpecError, match="run.*'chunk_slots'"):
            parse_document({"kind": "switch", "name": "t",
                            "spec": dict(SWITCH_SPEC),
                            "run": {"chunk_slots": 8}})

    def test_unknown_run_grid_axis_named(self):
        with pytest.raises(SpecError, match=r"grid\['run.warp'\]"):
            parse_document(_doc(grid={"run.warp": [1]}))


class TestExpansionErrors:
    def test_bad_component_type_names_grid_point(self):
        doc = parse_document(_doc(grid={"arrivals.type": ["bernouli"]}))
        with pytest.raises(SpecError, match="grid point 0.*bernouli"):
            expand_document(doc)

    def test_bad_param_value_names_grid_point(self):
        doc = parse_document(
            _doc(grid={"arrivals.params.load": [0.5, 7.0]}))
        with pytest.raises(SpecError, match="load"):
            expand_document(doc)

    def test_path_through_scalar_rejected(self):
        doc = parse_document(_doc(grid={"num_slots.deep": [1]}))
        with pytest.raises(SpecError, match="num_slots.deep.*not a mapping"):
            expand_document(doc)

    def test_bad_list_index_rejected(self):
        document = {"kind": "switch", "name": "t",
                    "spec": dict(SWITCH_SPEC),
                    "grid": {"ports.3.scheme": ["rads"]}}
        with pytest.raises(SpecError, match="'ports.3'"):
            expand_document(parse_document(document))


# --------------------------------------------------------------------- #
# Expansion semantics
# --------------------------------------------------------------------- #

class TestExpansion:
    def test_no_grid_yields_one_point_keeping_the_name(self):
        points = expand_document(parse_document(_doc()))
        assert [p.name for p in points] == ["t"]

    def test_product_in_key_order_first_axis_slowest(self):
        doc = parse_document(_doc(grid={"seed": [1, 2],
                                        "num_slots": [100, 200, 300]}))
        points = expand_document(doc)
        assert len(points) == 6
        assert [p.axes["seed"] for p in points] == [1, 1, 1, 2, 2, 2]
        assert [p.spec["num_slots"] for p in points] == [100, 200, 300] * 2
        assert [p.name for p in points][:2] == ["t-g000", "t-g001"]

    def test_intermediate_dicts_created_for_none_base(self):
        # head_mma is absent from the base spec; a dotted axis must still
        # be able to grow the component dict.
        doc = parse_document(_doc(grid={"head_mma.type": ["mdqf"]}))
        (point,) = expand_document(doc)
        assert point.spec["head_mma"]["type"] == "mdqf"

    def test_run_axes_route_to_run_options_not_the_spec(self):
        doc = parse_document(_doc(grid={"run.engine": ["batched", "array"]}))
        points = expand_document(doc)
        assert [p.run["engine"] for p in points] == ["batched", "array"]
        assert all("run" not in p.spec and "engine" not in p.spec
                   for p in points)

    def test_list_index_paths_reach_port_templates(self):
        # Swap the whole port template per point (scheme and buffer params
        # must change together), then reach inside it with a deeper path.
        document = {"kind": "switch", "name": "t",
                    "spec": dict(SWITCH_SPEC),
                    "grid": {"ports.0": [
                        {"scheme": "rads", "buffer": {"granularity": 2},
                         "arbiter": {"type": "oldest_cell", "params": {}}},
                        {"scheme": "cfds",
                         "buffer": {"dram_access_slots": 4, "granularity": 2,
                                    "num_banks": 8},
                         "arbiter": {"type": "oldest_cell", "params": {}}}],
                        "ports.0.buffer.granularity": [2, 4]}}
        points = expand_document(parse_document(document))
        assert len(points) == 4
        schemes = {p.spec["ports"][0]["scheme"] for p in points}
        grains = {p.spec["ports"][0]["buffer"]["granularity"] for p in points}
        assert schemes == {"rads", "cfds"}
        assert grains == {2, 4}


# --------------------------------------------------------------------- #
# Canonical round-trips
# --------------------------------------------------------------------- #

class TestRoundTrip:
    def test_every_compiled_spec_is_a_from_spec_to_spec_fixed_point(self):
        doc = parse_document(_doc(grid={
            "seed": [0, 1],
            "arrivals.params.load": [0.5, 1.0],
            "head_mma": [None, {"type": "mdqf", "params": {}}],
        }))
        for point in expand_document(doc):
            through_json = json.loads(json.dumps(point.spec))
            assert Scenario.from_spec(through_json).to_spec() == point.spec

    def test_switch_specs_round_trip_identically(self):
        document = {"kind": "switch", "name": "t",
                    "spec": dict(SWITCH_SPEC),
                    "grid": {"num_ports": [2, 4], "seed": [0, 9]}}
        for point in expand_document(parse_document(document)):
            through_json = json.loads(json.dumps(point.spec))
            assert (SwitchScenario.from_spec(through_json).to_spec()
                    == point.spec)

    def test_document_survives_yaml_dump_load_cycle(self):
        doc = parse_document(_doc(grid={"seed": [0, 1],
                                        "run.engine": ["array"]},
                                  run={"stream": True}))
        text = dump_yaml_document(doc)
        again = parse_document(yaml.safe_load(text))
        assert again == doc
        # ... and the compiled output is identical too (axis order included).
        first = [(p.name, p.spec, p.run) for p in expand_document(doc)]
        second = [(p.name, p.spec, p.run) for p in expand_document(again)]
        assert first == second

    def test_example_files_spec_yaml_json_spec_unchanged(self):
        """The committed examples hold the headline guarantee: compile,
        push every spec through YAML *and* JSON, and get the same spec
        back bit for bit."""
        for filename, cls in (("scenario_sweep.yaml", Scenario),
                              ("switch_sweep.yaml", SwitchScenario)):
            doc = load_yaml_document(str(EXAMPLES / filename))
            for point in expand_document(doc):
                via_yaml = yaml.safe_load(yaml.safe_dump(dict(point.spec)))
                via_json = json.loads(json.dumps(via_yaml))
                assert cls.from_spec(via_json).to_spec() == point.spec, (
                    f"{filename}:{point.name} did not round-trip")


# --------------------------------------------------------------------- #
# Jobs and execution
# --------------------------------------------------------------------- #

class TestJobs:
    def test_scenario_points_compile_to_scenario_jobs(self):
        doc = parse_document(_doc(run={"engine": "array", "stream": True,
                                       "chunk_slots": 64}))
        _, jobs = compile_jobs(doc)
        assert jobs[0].func == SCENARIO_JOB_FUNC
        assert jobs[0].kwargs["engine"] == "array"
        assert jobs[0].kwargs["stream"] is True
        assert jobs[0].kwargs["chunk_slots"] == 64

    def test_switch_points_compile_to_switch_jobs(self):
        doc = parse_document({"kind": "switch", "name": "t",
                              "spec": dict(SWITCH_SPEC)})
        _, jobs = compile_jobs(doc)
        assert jobs[0].func == SWITCH_JOB_FUNC

    def test_example_grid_runs_through_the_sweep_runner(self):
        """Acceptance: the committed example expands to >= 24 jobs and they
        all execute through SweepRunner (serial here, to stay hermetic)."""
        doc = load_yaml_document(str(EXAMPLES / "scenario_sweep.yaml"))
        points, jobs = compile_jobs(doc)
        assert len(jobs) >= 24
        # Shrink the horizon so the suite stays fast; geometry is untouched.
        small = [job.__class__(func=job.func,
                               kwargs={**dict(job.kwargs),
                                       "spec": {**dict(job.kwargs["spec"]),
                                                "num_slots": 300}},
                               tag=job.tag)
                 for job in jobs]
        results = SweepRunner(jobs=1).run(small)
        assert len(results) == len(points)
        assert all(r.slots >= 300 for r in results)

    def test_streamed_and_monolithic_jobs_agree(self):
        base = parse_document(_doc())
        stream = parse_document(_doc(run={"stream": True,
                                          "chunk_slots": 7}))
        (mono,) = SweepRunner(jobs=1).run(compile_jobs(base)[1])
        (chunked,) = SweepRunner(jobs=1).run(compile_jobs(stream)[1])
        assert mono == chunked


class TestYamlGating:
    def test_missing_pyyaml_yields_clean_spec_error(self, monkeypatch):
        import repro.workloads.spec_yaml as mod

        monkeypatch.setattr(mod, "_yaml", None)
        with pytest.raises(SpecError, match="pyyaml"):
            mod.load_yaml_document("whatever.yaml")

    def test_unreadable_file_yields_clean_spec_error(self, tmp_path):
        with pytest.raises(SpecError, match="cannot read"):
            load_yaml_document(str(tmp_path / "absent.yaml"))

    def test_invalid_yaml_yields_clean_spec_error(self, tmp_path):
        bad = tmp_path / "bad.yaml"
        bad.write_text("kind: [unclosed", encoding="utf-8")
        with pytest.raises(SpecError, match="not valid YAML"):
            load_yaml_document(str(bad))
