"""Tests for the NDJSON and binary trace formats."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.traffic.trace import TrafficTrace
from repro.workloads.traceio import BINARY_MAGIC, load_trace, save_trace


@pytest.fixture
def trace() -> TrafficTrace:
    events = [(0, None), (None, None), (3, 1), (2, 0), (None, 3)]
    built = TrafficTrace()
    for arrival, request in events:
        built.append(arrival, request)
    return built


@pytest.mark.parametrize("format", ["binary", "ndjson"])
class TestRoundTrip:
    def test_events_survive(self, trace, tmp_path, format):
        path = tmp_path / f"trace.{format}"
        save_trace(trace, path, format=format)
        loaded, metadata = load_trace(path)
        assert loaded.events == trace.events
        assert metadata == {}

    def test_metadata_survives(self, trace, tmp_path, format):
        path = tmp_path / f"trace.{format}"
        meta = {"scenario": "bursty-trains", "seed": 11, "num_queues": 8}
        save_trace(trace, path, format=format, metadata=meta)
        _loaded, metadata = load_trace(path)
        assert metadata == meta

    def test_empty_trace(self, tmp_path, format):
        path = tmp_path / f"empty.{format}"
        save_trace(TrafficTrace(), path, format=format)
        loaded, _metadata = load_trace(path)
        assert loaded.events == []


class TestFormats:
    def test_binary_is_smaller_than_ndjson(self, tmp_path):
        trace = TrafficTrace()
        for slot in range(500):
            trace.append(slot % 7, (slot + 3) % 7 if slot % 2 else None)
        binary, ndjson = tmp_path / "t.bin", tmp_path / "t.ndjson"
        save_trace(trace, binary, format="binary")
        save_trace(trace, ndjson, format="ndjson")
        assert binary.stat().st_size < ndjson.stat().st_size

    def test_binary_has_magic(self, trace, tmp_path):
        path = tmp_path / "t.bin"
        save_trace(trace, path, format="binary")
        assert path.read_bytes().startswith(BINARY_MAGIC)

    def test_ndjson_header_is_first_line(self, trace, tmp_path):
        path = tmp_path / "t.ndjson"
        save_trace(trace, path, format="ndjson", metadata={"k": 1})
        header = json.loads(path.read_text().splitlines()[0])
        assert header["format"] == "repro-trace"
        assert header["slots"] == len(trace)

    def test_unknown_format_rejected(self, trace, tmp_path):
        with pytest.raises(ConfigurationError):
            save_trace(trace, tmp_path / "t", format="csv")

    def test_unserialisable_metadata_rejected(self, trace, tmp_path):
        with pytest.raises(ConfigurationError):
            save_trace(trace, tmp_path / "t", metadata={"bad": object()})

    def test_huge_queue_id_rejected_by_binary_only(self, tmp_path):
        trace = TrafficTrace()
        trace.append(70_000, None)
        with pytest.raises(ConfigurationError):
            save_trace(trace, tmp_path / "t.bin", format="binary")
        save_trace(trace, tmp_path / "t.ndjson", format="ndjson")
        loaded, _metadata = load_trace(tmp_path / "t.ndjson")
        assert loaded.events == [(70_000, None)]


class TestErrors:
    def test_corrupt_binary(self, tmp_path):
        path = tmp_path / "t.bin"
        path.write_bytes(BINARY_MAGIC + b"\x01\x02")
        with pytest.raises(ConfigurationError):
            load_trace(path)

    def test_truncated_binary_payload(self, trace, tmp_path):
        path = tmp_path / "t.bin"
        save_trace(trace, path, format="binary")
        path.write_bytes(path.read_bytes()[:-3])
        with pytest.raises(ConfigurationError):
            load_trace(path)

    def test_text_without_header_rejected(self, tmp_path):
        path = tmp_path / "t.ndjson"
        path.write_text('{"something": "else"}\n[0,1]\n')
        with pytest.raises(ConfigurationError):
            load_trace(path)

    def test_slot_count_mismatch_rejected(self, tmp_path):
        path = tmp_path / "t.ndjson"
        path.write_text('{"format":"repro-trace","version":1,"slots":5}\n[0,null]\n')
        with pytest.raises(ConfigurationError):
            load_trace(path)

    def test_negative_queue_id_rejected(self, tmp_path):
        path = tmp_path / "t.ndjson"
        path.write_text('{"format":"repro-trace","version":1,"slots":1}\n[-1,null]\n')
        with pytest.raises(ConfigurationError):
            load_trace(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty"
        path.write_bytes(b"")
        with pytest.raises(ConfigurationError):
            load_trace(path)
