"""Property-based round-trip tests of the on-disk trace formats.

``save_trace``/``load_trace`` promise an exact event-for-event round-trip in
both formats plus metadata preservation — the property "record once, replay
anywhere" rests on.  Hypothesis drives arbitrary event sequences and metadata
through temp files; ``derandomize=True`` keeps CI deterministic.
"""

import tempfile
from pathlib import Path

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.errors import ConfigurationError  # noqa: E402
from repro.traffic.trace import TrafficTrace  # noqa: E402
from repro.workloads.traceio import load_trace, save_trace  # noqa: E402

#: Queue ids the *binary* format can carry (0xFFFF encodes "no event").
_BINARY_ID = st.one_of(st.none(), st.integers(0, 0xFFFE))
_EVENTS = st.lists(st.tuples(_BINARY_ID, _BINARY_ID), max_size=300)

#: Header metadata: JSON-scalar values under string keys.
_METADATA = st.dictionaries(
    st.text(min_size=1, max_size=20),
    st.one_of(st.none(), st.booleans(), st.integers(-10 ** 9, 10 ** 9),
              st.text(max_size=40)),
    max_size=5)

COMMON = dict(deadline=None, derandomize=True)


def _build_trace(events) -> TrafficTrace:
    trace = TrafficTrace()
    for arrival, request in events:
        trace.append(arrival, request)
    return trace


def _round_trip(trace, fmt, metadata=None):
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / f"trace.{fmt}"
        save_trace(trace, path, format=fmt, metadata=metadata)
        return load_trace(path)


@given(events=_EVENTS, fmt=st.sampled_from(["binary", "ndjson"]),
       metadata=_METADATA)
@settings(max_examples=120, **COMMON)
def test_round_trip_is_exact(events, fmt, metadata):
    trace = _build_trace(events)
    loaded, loaded_metadata = _round_trip(trace, fmt, metadata)
    assert loaded.events == trace.events
    assert len(loaded) == len(trace)
    assert loaded_metadata == metadata


@given(events=_EVENTS)
@settings(max_examples=60, **COMMON)
def test_formats_agree_with_each_other(events):
    """Both formats decode one in-memory trace to the same events — the
    format choice is a pure space/readability trade-off."""
    trace = _build_trace(events)
    binary, _ = _round_trip(trace, "binary")
    ndjson, _ = _round_trip(trace, "ndjson")
    assert binary.events == ndjson.events


@given(events=_EVENTS)
@settings(max_examples=60, **COMMON)
def test_arrival_request_streams_survive(events):
    """The derived per-side streams (what TraceArrivals/TraceArbiter replay)
    survive the round-trip slot for slot."""
    trace = _build_trace(events)
    loaded, _ = _round_trip(trace, "binary")
    assert loaded.arrivals() == trace.arrivals()
    assert loaded.requests() == trace.requests()


@given(queue=st.integers(0xFFFF, 2 ** 31), side=st.sampled_from([0, 1]))
@settings(max_examples=30, **COMMON)
def test_binary_rejects_ids_beyond_u16(queue, side):
    """Ids the 16-bit encoding cannot carry are refused with guidance (use
    NDJSON), never silently truncated."""
    trace = TrafficTrace()
    trace.append(queue if side == 0 else None, queue if side == 1 else None)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "trace.rtrc"
        with pytest.raises(ConfigurationError, match="ndjson"):
            save_trace(trace, path, format="binary")
        save_trace(trace, path, format="ndjson")
        loaded, _ = load_trace(path)
        assert loaded.events == trace.events
