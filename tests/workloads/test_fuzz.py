"""The generative spec fuzzer: determinism, sampler coverage, artifact
round-trips, and a small real differential run.

The nightly job runs ``repro fuzz --seeds 200 --stream``; these tests keep
the machinery honest at a few seeds so a sampler or comparison regression
is caught on the PR path, not at 3am.
"""

import json
import random

from repro.switch.scenario import SwitchScenario
from repro.workloads.fuzz import (
    DEFAULT_MASTER_SEED,
    SWITCH_EVERY,
    FuzzCase,
    case_rng,
    dump_artifact,
    fuzz_many,
    load_artifact,
    make_case,
    render_summary,
    run_case,
    sample_scenario,
    sample_switch_scenario,
)
from repro.workloads.scenario import Scenario


class TestDeterminism:
    def test_same_seed_and_index_always_yields_the_same_case(self):
        for index in range(6):
            first = make_case(DEFAULT_MASTER_SEED, index)
            second = make_case(DEFAULT_MASTER_SEED, index)
            assert first == second

    def test_different_indices_yield_different_specs(self):
        specs = [make_case(1, i).spec for i in range(8)]
        assert len({json.dumps(s, sort_keys=True) for s in specs}) == 8

    def test_different_master_seeds_decorrelate(self):
        a = make_case(1, 0)
        b = make_case(2, 0)
        assert a.spec != b.spec

    def test_case_rng_is_a_pure_function_of_seed_and_index(self):
        assert (case_rng(5, 3).random() == case_rng(5, 3).random())


class TestSwitchFraction:
    def test_every_switch_every_th_case_is_a_switch(self):
        kinds = [make_case(DEFAULT_MASTER_SEED, i).kind for i in range(12)]
        for i, kind in enumerate(kinds):
            expected = "switch" if i % SWITCH_EVERY == SWITCH_EVERY - 1 \
                else "scenario"
            assert kind == expected

    def test_switch_fraction_meets_the_acceptance_floor(self):
        # >= 30% of samples must be switch specs; index % 3 == 2 gives
        # exactly 1/3 for any seeds >= 3.
        kinds = [make_case(DEFAULT_MASTER_SEED, i).kind for i in range(30)]
        assert kinds.count("switch") / len(kinds) >= 0.30

    def test_all_switch_samples_have_at_least_64_ports(self):
        for i in range(60):
            spec = sample_switch_scenario(random.Random(i), i)
            assert spec["num_ports"] >= 64
            # Must actually build into a valid scenario.
            SwitchScenario.from_spec(spec)


class TestSamplerCoverage:
    """The adversarial corners the fuzzer exists to reach must actually be
    reachable — a sampler edit that silently drops one would hollow out
    the nightly run."""

    def _scenarios(self, n=80):
        return [sample_scenario(random.Random(i), i) for i in range(n)]

    def test_specs_are_valid_and_canonical(self):
        for spec in self._scenarios(20):
            assert Scenario.from_spec(spec).to_spec() == spec

    def test_heavy_tailed_arrivals_are_drawn(self):
        # arrivals may be null (a flush-only degenerate case), hence `or {}`.
        kinds = {(s["arrivals"] or {}).get("type")
                 for s in self._scenarios()}
        assert {"pareto", "zipf"} <= kinds

    def test_lossy_and_lossless_configs_are_both_drawn(self):
        strictness = {s["buffer"].get("strict", True)
                      for s in self._scenarios()}
        assert strictness == {True, False}

    def test_both_schemes_are_drawn(self):
        assert {s["scheme"] for s in self._scenarios()} == {"rads", "cfds"}

    def test_custom_mma_paths_are_drawn(self):
        mmas = {(s["head_mma"] or {}).get("type") for s in self._scenarios()}
        assert {None, "mdqf", "ecqf"} <= mmas

    def test_switch_traffic_includes_incast_and_permutation(self):
        kinds = {sample_switch_scenario(random.Random(i), i)["traffic"]["type"]
                 for i in range(60)}
        assert {"incast", "permutation"} <= kinds

    def test_cfds_switch_samples_get_shorter_horizons(self):
        # CFDS ports cost ~3x RADS per slot on the reference engine; the
        # sampler halves the horizon so one case cannot dominate a run.
        saw_cfds = False
        for i in range(120):
            spec = sample_switch_scenario(random.Random(i), i)
            schemes = {p["scheme"] for p in spec["ports"]}
            if "cfds" in schemes:
                saw_cfds = True
                assert spec["num_slots"] <= 120
        assert saw_cfds


class TestArtifacts:
    def test_case_json_round_trip(self):
        case = make_case(7, 2)
        again = FuzzCase.from_json(json.loads(json.dumps(case.to_json())))
        assert again == case

    def test_dump_and_load_artifact(self, tmp_path):
        case = make_case(7, 1)
        path = dump_artifact(case, divergences=[], artifact_dir=str(tmp_path),
                             stream=False)
        loaded = load_artifact(path)
        assert loaded == case
        document = json.loads((tmp_path / path.split("/")[-1]).read_text())
        assert document["format"] == "repro-fuzz-case"
        assert "--replay" in document["repro"]

    def test_replaying_an_artifact_reruns_the_exact_spec(self, tmp_path):
        case = make_case(11, 0)
        path = dump_artifact(case, divergences=[], artifact_dir=str(tmp_path),
                             stream=False)
        divergences = run_case(load_artifact(path), stream=False)
        assert divergences == []


class TestFuzzMany:
    def test_small_run_is_divergence_free(self):
        summary = fuzz_many(seeds=4, master_seed=DEFAULT_MASTER_SEED,
                            stream=False, artifact_dir=None, progress=None)
        assert summary.ok
        assert summary.cases == 4
        assert summary.switch_cases == 1
        assert summary.failures == []

    def test_render_summary_mentions_counts(self):
        summary = fuzz_many(seeds=2, master_seed=3, stream=False,
                            artifact_dir=None, progress=None)
        text = render_summary(summary, stream=False)
        assert "2 cases" in text and "0 divergent" in text

    def test_failing_case_dumps_an_artifact(self, tmp_path, monkeypatch):
        import repro.workloads.fuzz as mod

        def broken(case, stream, rng=None, **kwargs):
            return [mod.Divergence(leg="forced", field="report",
                                   detail="injected for the test")]

        monkeypatch.setattr(mod, "run_case", broken)
        summary = mod.fuzz_many(seeds=2, master_seed=3, stream=False,
                                artifact_dir=str(tmp_path), progress=None)
        assert not summary.ok
        assert len(summary.artifacts) == 2
        for artifact in summary.artifacts:
            document = json.loads(open(artifact).read())
            assert document["divergences"][0]["leg"] == "forced"
