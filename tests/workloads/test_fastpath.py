"""Acceptance tests: the batched fast path is bit-identical to the legacy
per-slot loop, and recorded traces replay deterministically across variants."""

import pytest

from repro.sim.engine import ClosedLoopSimulation
from repro.traffic.arbiters import TraceArbiter
from repro.traffic.arrivals import TraceArrivals
from repro.workloads import all_scenarios, load_trace, save_trace
from repro.workloads.registry import scenario_names


@pytest.mark.parametrize("name", scenario_names())
def test_fast_path_identical_to_legacy_loop(name):
    """The headline acceptance criterion: every statistic the report carries
    (throughput counters, the full latency histogram, the buffer-side result
    and the recorded trace) matches exactly between the two loops."""
    scenario = next(s for s in all_scenarios() if s.name == name)
    fast = scenario.run(fast_path=True, record_trace=True)
    legacy = scenario.run(fast_path=False, record_trace=True)
    assert fast.throughput == legacy.throughput
    assert fast.latency == legacy.latency
    assert fast.buffer_result == legacy.buffer_result
    assert fast.trace.events == legacy.trace.events


@pytest.mark.parametrize("format", ["binary", "ndjson"])
def test_recorded_trace_replays_identically(tmp_path, format):
    """Record once, save, load, replay: the replayed run reproduces the
    original statistics exactly (the trace pins both sides of the slot)."""
    scenario = next(s for s in all_scenarios() if s.name == "bursty-trains")
    original = scenario.run(record_trace=True)
    path = tmp_path / f"capture.{format}"
    save_trace(original.trace, path, format=format,
               metadata={"scenario": scenario.name})
    trace, metadata = load_trace(path)
    assert metadata["scenario"] == scenario.name

    replay = ClosedLoopSimulation(scenario.build_buffer(),
                                  TraceArrivals(trace.arrivals()),
                                  TraceArbiter(trace.requests()))
    report = replay.run(len(trace))
    assert report.throughput == original.throughput
    assert report.latency == original.latency
    assert report.buffer_result == original.buffer_result


def test_recorded_trace_replays_across_buffer_variants(tmp_path):
    """A trace captured on the RADS buffer drives the CFDS buffer (same queue
    count): arrivals and requests are identical, only the buffer differs."""
    scenario = next(s for s in all_scenarios() if s.name == "bursty-trains")
    original = scenario.run(record_trace=True)
    path = tmp_path / "capture.rtrc"
    save_trace(original.trace, path)
    trace, _metadata = load_trace(path)

    cfds = next(s for s in all_scenarios() if s.name == "markov-onoff")
    replay = ClosedLoopSimulation(cfds.build_buffer(),
                                  TraceArrivals(trace.arrivals()),
                                  TraceArbiter(trace.requests()))
    report = replay.run(len(trace))
    # Same offered traffic; the CFDS buffer must still lose nothing.
    assert report.throughput.arrivals == original.throughput.arrivals
    assert report.throughput.drops == 0
    assert report.zero_miss
