"""Tests for the assembled CFDS packet buffer."""

import pytest

from repro.core.buffer import CFDSPacketBuffer
from repro.core.config import CFDSConfig
from repro.sim.engine import ClosedLoopSimulation
from repro.traffic.arbiters import OldestCellArbiter, RandomArbiter, RoundRobinAdversary
from repro.traffic.arrivals import BernoulliArrivals, BurstyArrivals


def _config(**overrides):
    defaults = dict(num_queues=8, dram_access_slots=8, granularity=2,
                    num_banks=32, strict=True)
    defaults.update(overrides)
    return CFDSConfig(**defaults)


class TestAdmissibility:
    def test_cannot_request_empty_queue(self):
        buffer = CFDSPacketBuffer(_config())
        with pytest.raises(ValueError):
            buffer.step(arrival=None, request=0)

    def test_backlog_bookkeeping(self):
        buffer = CFDSPacketBuffer(_config())
        buffer.step(arrival=5, request=None)
        assert buffer.backlog(5) == 1
        buffer.step(arrival=None, request=5)
        assert buffer.backlog(5) == 0


class TestEndToEnd:
    def test_fifo_order_per_queue(self):
        buffer = CFDSPacketBuffer(_config())
        for _ in range(10):
            for queue in range(8):
                buffer.step(arrival=queue, request=None)
        adversary = RoundRobinAdversary(8)
        served = []
        for _ in range(80):
            backlog = [buffer.backlog(q) for q in range(8)]
            cell = buffer.step(arrival=None, request=adversary.next_request(0, backlog))
            if cell is not None:
                served.append(cell)
        served.extend(buffer.drain())
        assert len(served) == 80
        for queue in range(8):
            seqnos = [c.seqno for c in served if c.queue == queue]
            assert seqnos == list(range(10))

    def test_zero_miss_and_conflict_free_closed_loop(self):
        config = _config(strict=True)
        buffer = CFDSPacketBuffer(config)
        report = ClosedLoopSimulation(buffer,
                                      BernoulliArrivals(8, load=0.9, seed=21),
                                      RandomArbiter(8, load=0.9, seed=22)).run(4000)
        assert report.zero_miss
        assert report.buffer_result.bank_conflicts == 0

    def test_bursty_hot_queue_is_sustained(self):
        # A single queue read and written at (almost) full line rate: this is
        # only sustainable because the scheduler issues one read and one write
        # per period and the physical access time is B/2 slots.
        config = _config(strict=True)
        buffer = CFDSPacketBuffer(config)
        report = ClosedLoopSimulation(buffer,
                                      BurstyArrivals(8, mean_burst_cells=64, load=0.95, seed=23),
                                      OldestCellArbiter(8)).run(5000)
        assert report.zero_miss
        assert report.buffer_result.bank_conflicts == 0
        assert report.throughput.departures > 0.9 * report.throughput.arrivals

    def test_statistics_within_bounds(self):
        config = _config(strict=True)
        buffer = CFDSPacketBuffer(config)
        report = ClosedLoopSimulation(buffer,
                                      BernoulliArrivals(8, load=0.85, seed=31),
                                      RandomArbiter(8, load=0.85, seed=32)).run(4000)
        result = report.buffer_result
        assert result.max_request_register_occupancy <= config.effective_rr_capacity
        # The closed-loop head cache adds one cut-through block per queue on
        # top of the worst-case head-side requirement.
        closed_loop_bound = (config.effective_head_sram_cells
                             + config.num_queues * config.granularity)
        assert result.max_head_sram_occupancy <= closed_loop_bound


class TestRenaming:
    def test_renaming_lets_hot_queue_use_whole_dram(self):
        config = _config(strict=False)
        with_renaming = CFDSPacketBuffer(config, use_renaming=True,
                                         oversubscription=2, group_capacity_cells=64)
        without_renaming = CFDSPacketBuffer(config, use_renaming=False,
                                            group_capacity_cells=64)
        # Everything goes to queue 0 and nothing is read: the DRAM fills up.
        for buffer in (with_renaming, without_renaming):
            for _ in range(1200):
                buffer.step(arrival=0, request=None)
        assert without_renaming.dropped_cells > 0
        assert with_renaming.dropped_cells < without_renaming.dropped_cells
        assert with_renaming.dram_utilisation() > 3 * without_renaming.dram_utilisation()

    def test_renaming_preserves_fifo_order(self):
        config = _config(strict=True)
        buffer = CFDSPacketBuffer(config, use_renaming=True, oversubscription=2,
                                  group_capacity_cells=16)
        for seqno in range(60):
            buffer.step(arrival=2, request=None)
        served = []
        while buffer.can_request(2):
            cell = buffer.step(arrival=None, request=2)
            if cell is not None:
                served.append(cell)
        served.extend(buffer.drain())
        assert [c.seqno for c in served] == list(range(60))

    def test_oversubscription_validation(self):
        with pytest.raises(ValueError):
            CFDSPacketBuffer(_config(), oversubscription=0)

    def test_dram_utilisation_zero_without_capacity_limit(self):
        buffer = CFDSPacketBuffer(_config())
        assert buffer.dram_utilisation() == 0.0
