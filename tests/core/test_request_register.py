"""Tests for the Requests Register (issue-queue) model."""

import pytest

from repro.core.request_register import RequestRegister
from repro.errors import BufferOverflowError
from repro.types import ReplenishRequest, TransferDirection


def _request(queue=0, slot=0, block=0):
    return ReplenishRequest(queue=queue, direction=TransferDirection.READ,
                            cells=2, issue_slot=slot, block_index=block)


class TestWakeUpSelect:
    def test_oldest_ready_entry_is_selected(self):
        rr = RequestRegister()
        rr.push(_request(queue=0), bank=1, slot=0)
        rr.push(_request(queue=1), bank=2, slot=2)
        rr.push(_request(queue=2), bank=3, slot=4)
        entry = rr.select(locked_banks=set())
        assert entry.request.queue == 0
        assert rr.occupancy() == 2

    def test_locked_banks_are_skipped(self):
        rr = RequestRegister()
        rr.push(_request(queue=0), bank=1, slot=0)
        rr.push(_request(queue=1), bank=2, slot=2)
        entry = rr.select(locked_banks={1})
        assert entry.request.queue == 1
        # The skipped entry is still there and recorded one skip.
        remaining = rr.entries()
        assert len(remaining) == 1
        assert remaining[0].request.queue == 0
        assert remaining[0].skips == 1

    def test_select_returns_none_when_everything_locked(self):
        rr = RequestRegister()
        rr.push(_request(queue=0), bank=1, slot=0)
        assert rr.select(locked_banks={1}) is None
        assert rr.occupancy() == 1
        assert rr.max_skips_observed == 1

    def test_select_empty_register(self):
        rr = RequestRegister()
        assert rr.select(set()) is None

    def test_age_order_maintained_after_out_of_order_issue(self):
        rr = RequestRegister()
        for queue, bank in enumerate([5, 6, 7, 5]):
            rr.push(_request(queue=queue), bank=bank, slot=queue)
        rr.select(locked_banks={5})          # issues queue 1 (bank 6)
        banks = rr.pending_banks()
        assert banks == [5, 7, 5]            # compaction keeps age order

    def test_wake_up_vector(self):
        rr = RequestRegister()
        rr.push(_request(queue=0), bank=1, slot=0)
        rr.push(_request(queue=1), bank=2, slot=1)
        assert rr.wake_up({2}) == [True, False]


class TestCapacityAndStats:
    def test_capacity_enforced(self):
        rr = RequestRegister(capacity=2)
        rr.push(_request(), bank=0, slot=0)
        rr.push(_request(), bank=1, slot=1)
        with pytest.raises(BufferOverflowError):
            rr.push(_request(), bank=2, slot=2)

    def test_peak_occupancy_and_issue_count(self):
        rr = RequestRegister()
        for i in range(5):
            rr.push(_request(queue=i), bank=i, slot=i)
        for _ in range(3):
            rr.select(set())
        assert rr.peak_occupancy == 5
        assert rr.issued_count == 3
        assert len(rr) == 2

    def test_payload_travels_with_entry(self):
        rr = RequestRegister()
        rr.push(_request(queue=3), bank=0, slot=0, payload="cells")
        assert rr.select(set()).payload == "cells"

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            RequestRegister(capacity=-1)
