"""Tests for the queue-renaming anti-fragmentation mechanism (Section 6)."""

import pytest

from repro.core.renaming import RenamingRegister, RenamingTable
from repro.errors import RenamingError


class TestRenamingRegister:
    def test_write_then_read_roundtrip(self):
        register = RenamingRegister(logical_queue=0)
        register.open_entry(physical_queue=7)
        register.record_write(4)
        assert register.total_cells() == 4
        translation = register.record_read(2)
        assert translation.takes == [(7, 2)]
        assert translation.released == []
        assert register.total_cells() == 2

    def test_entry_released_when_drained(self):
        register = RenamingRegister(logical_queue=0)
        register.open_entry(3)
        register.record_write(2)
        translation = register.record_read(2)
        assert translation.released == [3]
        assert len(register) == 0

    def test_reads_span_entries_in_fifo_order(self):
        register = RenamingRegister(logical_queue=0)
        register.open_entry(3)
        register.record_write(2)
        register.open_entry(9)
        register.record_write(2)
        translation = register.record_read(3)
        assert translation.takes == [(3, 2), (9, 1)]
        assert translation.released == [3]
        assert register.physical_queues() == [9]

    def test_read_beyond_recorded_cells_fails(self):
        register = RenamingRegister(logical_queue=0)
        register.open_entry(1)
        register.record_write(1)
        with pytest.raises(RenamingError):
            register.record_read(5)

    def test_write_without_entry_fails(self):
        register = RenamingRegister(logical_queue=0)
        with pytest.raises(RenamingError):
            register.record_write(1)


class TestRenamingTable:
    def test_logical_queue_spills_across_groups_when_group_fills(self):
        table = RenamingTable(num_logical=2, num_physical=8, num_groups=4,
                              group_capacity_cells=4)
        physicals = set()
        for _ in range(4):  # 4 blocks of 4 cells = 16 cells >> one group's 4
            physicals.add(table.translate_write(0, 4))
        groups = {p % 4 for p in physicals}
        assert len(groups) == 4, "the logical queue must occupy several groups"
        # The whole DRAM is usable by a single logical queue.
        assert sum(table.group_occupancy()) == 16

    def test_without_capacity_one_physical_queue_per_logical(self):
        table = RenamingTable(num_logical=2, num_physical=4, num_groups=2)
        first = table.translate_write(0, 3)
        second = table.translate_write(0, 3)
        assert first == second
        assert table.physical_in_use() == 1

    def test_reads_follow_writes_in_fifo_order(self):
        table = RenamingTable(num_logical=1, num_physical=8, num_groups=4,
                              group_capacity_cells=2)
        written = [table.translate_write(0, 2) for _ in range(3)]
        read = [table.translate_read(0, 2) for _ in range(3)]
        assert read == written

    def test_physical_queue_reused_after_release(self):
        table = RenamingTable(num_logical=1, num_physical=2, num_groups=1,
                              group_capacity_cells=100)
        table.translate_write(0, 2)
        table.translate_read(0, 2)
        assert table.physical_in_use() == 0
        second = table.translate_write(0, 2)
        assert second in (0, 1)
        assert table.physical_in_use() == 1

    def test_runs_out_of_room_when_everything_is_full(self):
        table = RenamingTable(num_logical=1, num_physical=2, num_groups=2,
                              group_capacity_cells=2)
        table.translate_write(0, 2)
        table.translate_write(0, 2)
        with pytest.raises(RenamingError):
            table.translate_write(0, 2)

    def test_read_of_inactive_queue_fails(self):
        table = RenamingTable(num_logical=2, num_physical=4, num_groups=2)
        with pytest.raises(RenamingError):
            table.translate_read(1, 1)

    def test_group_balance_prefers_emptier_group(self):
        table = RenamingTable(num_logical=4, num_physical=8, num_groups=2,
                              group_capacity_cells=100)
        table.translate_write(0, 10)      # group of physical 0
        second = table.translate_write(1, 2)
        first_group = table.register(0).physical_queues()[0] % 2
        assert second % 2 != first_group

    def test_oversubscription_validation(self):
        with pytest.raises(RenamingError):
            RenamingTable(num_logical=8, num_physical=4, num_groups=2)
        with pytest.raises(ValueError):
            RenamingTable(num_logical=0, num_physical=4, num_groups=2)

    def test_cells_recorded_and_peek(self):
        table = RenamingTable(num_logical=2, num_physical=4, num_groups=2)
        assert table.peek_read(0) is None
        physical = table.translate_write(0, 4)
        assert table.cells_recorded(0) == 4
        assert table.peek_read(0) == physical
