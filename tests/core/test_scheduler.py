"""Tests for the DRAM Scheduler Subsystem (DSS)."""

import pytest

from repro.core.config import CFDSConfig
from repro.core.scheduler import DRAMSchedulerSubsystem
from repro.types import ReplenishRequest, TransferDirection


def _config(**overrides):
    defaults = dict(num_queues=8, dram_access_slots=8, granularity=2, num_banks=32)
    defaults.update(overrides)
    return CFDSConfig(**defaults)


def _read(queue, slot, block):
    return ReplenishRequest(queue=queue, direction=TransferDirection.READ,
                            cells=2, issue_slot=slot, block_index=block)


class TestBasicScheduling:
    def test_single_request_completes_after_access_time(self):
        config = _config()
        dss = DRAMSchedulerSubsystem(config)
        dss.submit(_read(0, 0, 0), payload="block-0")
        completed = []
        for slot in range(0, 12):
            completed.extend(dss.tick(slot))
        assert len(completed) == 1
        assert completed[0].payload == "block-0"
        assert completed[0].finish_slot == config.effective_dram_random_access_slots

    def test_requests_to_different_banks_overlap(self):
        config = _config()
        dss = DRAMSchedulerSubsystem(config)
        # Two queues in different groups: both can be in flight at once.
        dss.submit(_read(0, 0, 0))
        dss.submit(_read(1, 0, 0))
        dss.tick(0)
        dss.tick(1)
        dss.tick(2)
        assert dss.in_flight_count == 2

    def test_same_queue_consecutive_blocks_do_not_conflict(self):
        config = _config()
        dss = DRAMSchedulerSubsystem(config)
        for block in range(4):
            dss.submit(_read(0, block * 2, block))
        for slot in range(0, 40):
            dss.tick(slot)
        assert dss.bank_conflicts == 0
        assert dss.pending_count == 0
        assert dss.max_skips_observed == 0

    def test_conflicting_bank_is_deferred_not_violated(self):
        # Two different queues that live in the same group and target the same
        # bank (same block ordinal): the second must wait, not conflict.
        config = _config(num_queues=16)  # 16 queues over 8 groups -> 2 per group
        dss = DRAMSchedulerSubsystem(config)
        same_group = [q for q in range(16) if q % dss.mapping.num_groups == 0]
        first, second = same_group[0], same_group[1]
        assert dss.mapping.bank_of(first, 0).bank == dss.mapping.bank_of(second, 0).bank
        dss.submit(_read(first, 0, 0))
        dss.submit(_read(second, 0, 0))
        completed = []
        for slot in range(0, 30):
            completed.extend(dss.tick(slot))
        assert dss.bank_conflicts == 0
        assert len(completed) == 2
        # The second access started only after the bank freed.
        finishes = sorted(c.finish_slot for c in completed)
        assert finishes[1] >= finishes[0] + config.effective_dram_random_access_slots

    def test_issue_only_on_period_boundaries(self):
        config = _config()
        dss = DRAMSchedulerSubsystem(config)
        dss.tick(0)
        dss.submit(_read(0, 1, 0))
        dss.tick(1)          # not a boundary: nothing issued
        assert dss.in_flight_count == 0
        dss.tick(2)
        assert dss.in_flight_count == 1


class TestDualIssue:
    def test_two_streams_sustained(self):
        """With issues_per_period=2 (full buffer: read + write), a read and a
        write stream to the same queue are both sustained at one block per
        period, which a single-issue scheduler could not do."""
        config = _config()
        dss = DRAMSchedulerSubsystem(config, issues_per_period=2)
        read_block = write_block = 0
        for slot in range(0, 400):
            if slot % config.granularity == 0:
                dss.submit(_read(0, slot, read_block))
                read_block += 1
                dss.submit(ReplenishRequest(queue=0, direction=TransferDirection.WRITE,
                                            cells=2, issue_slot=slot,
                                            block_index=write_block))
                write_block += 1
            dss.tick(slot)
        assert dss.bank_conflicts == 0
        # Pending work must stay bounded (the scheduler keeps up).
        assert dss.pending_count <= config.effective_rr_capacity
        assert dss.stall_fraction < 0.2

    def test_invalid_issues_per_period(self):
        with pytest.raises(ValueError):
            DRAMSchedulerSubsystem(_config(), issues_per_period=0)


class TestStatistics:
    def test_max_total_delay_tracked(self):
        config = _config()
        dss = DRAMSchedulerSubsystem(config)
        dss.submit(_read(0, 0, 0))
        for slot in range(0, 10):
            dss.tick(slot)
        assert dss.max_total_delay_slots >= config.effective_dram_random_access_slots

    def test_peak_rr_occupancy(self):
        config = _config()
        dss = DRAMSchedulerSubsystem(config)
        for block in range(3):
            dss.submit(_read(0, 0, block))
        assert dss.peak_rr_occupancy == 3
