"""Tests for the CFDS sizing equations (1)-(4) and the Table 2 values."""

import pytest

from repro.core import sizing
from repro.errors import ConfigurationError


class TestStructure:
    def test_banks_per_group(self):
        assert sizing.banks_per_group(32, 8) == 4
        assert sizing.banks_per_group(32, 32) == 1

    def test_num_groups(self):
        assert sizing.num_groups(256, 32, 8) == 64
        assert sizing.num_groups(256, 32, 1) == 8

    def test_queues_per_group_with_and_without_writes(self):
        assert sizing.queues_per_group(512, 256, 32, 8, account_writes=True) == 16
        assert sizing.queues_per_group(512, 256, 32, 8, account_writes=False) == 8

    def test_orr_size(self):
        assert sizing.orr_size(32, 8) == 3
        assert sizing.orr_size(32, 32) == 0

    def test_invalid_divisibility(self):
        with pytest.raises(ConfigurationError):
            sizing.banks_per_group(32, 5)
        with pytest.raises(ConfigurationError):
            sizing.num_groups(100, 32, 1)


class TestTable2RequestRegisterSizes:
    """The ten Requests Register sizes printed in Table 2 must be reproduced
    exactly by the hardware (power-of-two) size."""

    @pytest.mark.parametrize("granularity,expected", [
        (32, 0), (16, 8), (8, 64), (4, 256), (2, 1024), (1, 4096)])
    def test_oc3072_row(self, granularity, expected):
        assert sizing.request_register_hardware_size(512, 256, 32, granularity) == expected

    @pytest.mark.parametrize("granularity,expected", [
        (8, 0), (4, 2), (2, 16), (1, 64)])
    def test_oc768_row(self, granularity, expected):
        assert sizing.request_register_hardware_size(128, 256, 8, granularity) == expected

    def test_analytical_size_never_exceeds_hardware_size(self):
        for granularity in (1, 2, 4, 8, 16, 32):
            analytical = sizing.request_register_size(512, 256, 32, granularity)
            hardware = sizing.request_register_hardware_size(512, 256, 32, granularity)
            assert analytical <= hardware or hardware == 0


class TestTable2SchedulingTimes:
    @pytest.mark.parametrize("granularity,expected_ns", [
        (16, 51.2), (8, 25.6), (4, 12.8), (2, 6.4), (1, 3.2)])
    def test_oc3072_scheduling_time(self, granularity, expected_ns):
        assert sizing.scheduling_time_ns(granularity, 160e9) == pytest.approx(expected_ns)

    @pytest.mark.parametrize("granularity,expected_ns", [
        (4, 51.2), (2, 25.6), (1, 12.8)])
    def test_oc768_scheduling_time(self, granularity, expected_ns):
        assert sizing.scheduling_time_ns(granularity, 40e9) == pytest.approx(expected_ns)

    def test_invalid_granularity(self):
        with pytest.raises(ConfigurationError):
            sizing.scheduling_time_ns(0, 40e9)


class TestDelayAndSRAM:
    def test_latency_is_zero_extra_when_b_equals_big_b(self):
        # b == B degenerates to RADS: no reordering, only the (B - b) = 0 term.
        assert sizing.latency_slots(512, 256, 32, 32) == 0

    def test_latency_grows_as_granularity_shrinks(self):
        values = [sizing.latency_slots(512, 256, 32, b) for b in (16, 8, 4, 2, 1)]
        assert values == sorted(values)

    def test_max_skips_matches_rr_size_form(self):
        assert sizing.max_skips(512, 256, 32, 8) == sizing.request_register_size(512, 256, 32, 8)

    def test_cfds_sram_exceeds_rads_at_same_granularity(self):
        from repro.rads.sizing import rads_sram_size

        lookahead = 512 * 7 + 1
        cfds = sizing.cfds_sram_size(lookahead, 512, 256, 32, 8)
        rads = rads_sram_size(lookahead, 512, 8)
        assert cfds > rads
        assert cfds == rads + sizing.latency_slots(512, 256, 32, 8)

    def test_cfds_sram_much_smaller_than_rads_at_paper_point(self):
        """The headline claim: granularity reduction shrinks the SRAM by
        roughly an order of magnitude despite the reordering overhead."""
        from repro.rads.sizing import ecqf_max_lookahead, rads_sram_size

        rads_cells = rads_sram_size(ecqf_max_lookahead(512, 32), 512, 32)
        cfds_cells = sizing.cfds_sram_size(ecqf_max_lookahead(512, 8), 512, 256, 32, 8)
        assert cfds_cells < rads_cells / 3

    def test_total_delay_combines_lookahead_and_latency(self):
        total = sizing.cfds_total_delay_slots(100, 512, 256, 32, 8)
        assert total == 100 + sizing.latency_slots(512, 256, 32, 8)

    def test_cfds_sram_bytes(self):
        cells = sizing.cfds_sram_size(100, 64, 64, 16, 4)
        assert sizing.cfds_sram_bytes(100, 64, 64, 16, 4) == cells * 64
