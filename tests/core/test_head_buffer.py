"""Tests for the CFDS head-side simulator."""

import pytest

from repro.core.config import CFDSConfig
from repro.core.head_buffer import CFDSHeadBuffer
from repro.errors import CacheMissError
from repro.traffic.arbiters import RandomArbiter, RoundRobinAdversary

UNBOUNDED = [10 ** 9] * 64


def _run(config, arbiter, slots):
    buffer = CFDSHeadBuffer(config)
    result = buffer.run(arbiter.next_request(s, UNBOUNDED[:config.num_queues])
                        for s in range(slots))
    return buffer, result


class TestZeroMissGuarantee:
    @pytest.mark.parametrize("num_queues,big_b,b,banks", [
        (8, 8, 2, 16), (8, 8, 4, 16), (16, 8, 2, 32), (16, 16, 4, 64), (6, 4, 2, 8)])
    def test_round_robin_adversary_never_misses(self, num_queues, big_b, b, banks):
        config = CFDSConfig(num_queues=num_queues, dram_access_slots=big_b,
                            granularity=b, num_banks=banks)
        _, result = _run(config, RoundRobinAdversary(num_queues), 4000)
        assert result.zero_miss
        assert result.cells_out == 4000
        assert result.bank_conflicts == 0

    def test_random_requests_never_miss(self):
        config = CFDSConfig(num_queues=12, dram_access_slots=8, granularity=2, num_banks=32)
        _, result = _run(config, RandomArbiter(12, load=1.0, seed=3), 4000)
        assert result.zero_miss
        assert result.bank_conflicts == 0

    def test_in_order_delivery_per_queue(self):
        config = CFDSConfig(num_queues=8, dram_access_slots=8, granularity=2, num_banks=16)
        buffer = CFDSHeadBuffer(config)
        adversary = RoundRobinAdversary(8)
        served = []
        for slot in range(1200):
            cell = buffer.step(adversary.next_request(slot, UNBOUNDED[:8]))
            if cell is not None:
                served.append(cell)
        per_queue = {}
        for cell in served:
            per_queue.setdefault(cell.queue, []).append(cell.seqno)
        for seqnos in per_queue.values():
            assert seqnos == list(range(len(seqnos)))

    def test_structures_stay_within_analytical_bounds(self):
        config = CFDSConfig(num_queues=16, dram_access_slots=16, granularity=4, num_banks=64)
        _, result = _run(config, RoundRobinAdversary(16), 5000)
        assert result.max_head_sram_occupancy <= config.effective_head_sram_cells
        assert result.max_request_register_occupancy <= config.effective_rr_capacity
        # Total request-to-data delay never exceeds lookahead-equivalent bound:
        # the RR wait plus the physical access fits inside the latency budget
        # plus one MMA period.
        assert result.max_reorder_delay_slots <= (config.effective_latency
                                                  + config.granularity
                                                  + config.dram_access_slots)

    def test_grossly_undersized_latency_register_misses(self):
        # Remove the latency register entirely and shrink the lookahead: the
        # reordering delay is no longer absorbed and misses appear.
        config = CFDSConfig(num_queues=16, dram_access_slots=16, granularity=2,
                            num_banks=32, latency=0, lookahead=4, strict=False)
        _, result = _run(config, RoundRobinAdversary(16), 3000)
        assert result.miss_count > 0

    def test_strict_mode_raises_on_miss(self):
        config = CFDSConfig(num_queues=16, dram_access_slots=16, granularity=2,
                            num_banks=32, latency=0, lookahead=4, strict=True)
        buffer = CFDSHeadBuffer(config)
        adversary = RoundRobinAdversary(16)
        with pytest.raises(CacheMissError):
            for slot in range(3000):
                buffer.step(adversary.next_request(slot, UNBOUNDED[:16]))


class TestMechanics:
    def test_total_request_delay_is_lookahead_plus_latency(self):
        config = CFDSConfig(num_queues=8, dram_access_slots=8, granularity=2, num_banks=16)
        buffer = CFDSHeadBuffer(config)
        assert buffer.total_request_delay == (config.effective_lookahead
                                              + config.effective_latency)

    def test_grant_arrives_exactly_after_total_delay(self):
        config = CFDSConfig(num_queues=4, dram_access_slots=4, granularity=2,
                            num_banks=8, lookahead=6, latency=5)
        buffer = CFDSHeadBuffer(config)
        buffer.step(2)
        grants = [buffer.step(None) for _ in range(20)]
        first_grant_index = next(i for i, g in enumerate(grants) if g is not None)
        # The request entered at slot 0 and must be granted 11 slots later,
        # i.e. on the 11th subsequent step (index 10 in this list).
        assert first_grant_index == 10
        assert grants[first_grant_index].queue == 2

    def test_invalid_request_rejected(self):
        config = CFDSConfig(num_queues=4, dram_access_slots=4, granularity=2, num_banks=8)
        buffer = CFDSHeadBuffer(config)
        with pytest.raises(ValueError):
            buffer.step(4)

    def test_dram_reads_counted(self):
        config = CFDSConfig(num_queues=8, dram_access_slots=8, granularity=2, num_banks=16)
        _, result = _run(config, RoundRobinAdversary(8), 1000)
        assert result.dram_reads > 0
        assert result.cells_out == 1000
