"""Tests for CFDSConfig."""

import pytest

from repro.core.config import CFDSConfig
from repro.core import sizing
from repro.errors import ConfigurationError
from repro.rads.sizing import ecqf_safe_lookahead


class TestDefaults:
    def test_lookahead_defaults_to_ecqf_safe_value_for_b(self):
        config = CFDSConfig(num_queues=16, dram_access_slots=8, granularity=2, num_banks=32)
        assert config.effective_lookahead == ecqf_safe_lookahead(16, 2)

    def test_latency_defaults_to_equation3(self):
        config = CFDSConfig(num_queues=16, dram_access_slots=8, granularity=2, num_banks=32)
        assert config.effective_latency == sizing.latency_slots(16, 32, 8, 2)

    def test_rr_capacity_defaults_to_hardware_size(self):
        config = CFDSConfig(num_queues=512, dram_access_slots=32, granularity=8)
        assert config.effective_rr_capacity == 64  # Table 2, OC-3072, b=8

    def test_rr_capacity_at_least_one_for_degenerate_case(self):
        config = CFDSConfig(num_queues=16, dram_access_slots=8, granularity=8, num_banks=8)
        assert config.effective_rr_capacity == 1

    def test_head_sram_default_uses_equation4_plus_prefetch_margin(self):
        config = CFDSConfig(num_queues=16, dram_access_slots=8, granularity=2, num_banks=32)
        expected = (sizing.cfds_sram_size(config.effective_lookahead, 16, 32, 8, 2)
                    + config.effective_lookahead + 2)
        assert config.effective_head_sram_cells == expected

    def test_physical_access_time_defaults_to_half_b(self):
        config = CFDSConfig(num_queues=16, dram_access_slots=8, granularity=2, num_banks=32)
        assert config.effective_dram_random_access_slots == 4
        assert config.orr_size == 1

    def test_structure_properties(self):
        config = CFDSConfig(num_queues=16, dram_access_slots=8, granularity=2, num_banks=32)
        assert config.banks_per_group == 4
        assert config.num_groups == 8


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"num_queues": 0, "dram_access_slots": 8, "granularity": 2},
        {"num_queues": 4, "dram_access_slots": 8, "granularity": 3},
        {"num_queues": 4, "dram_access_slots": 8, "granularity": 2, "num_banks": 30},
        {"num_queues": 4, "dram_access_slots": 8, "granularity": 2, "lookahead": 0},
        {"num_queues": 4, "dram_access_slots": 8, "granularity": 2, "latency": -1},
        {"num_queues": 4, "dram_access_slots": 8, "granularity": 2,
         "dram_random_access_slots": 9},
    ])
    def test_bad_parameters_rejected(self, kwargs):
        kwargs.setdefault("num_banks", 32)
        with pytest.raises(ConfigurationError):
            CFDSConfig(**kwargs)


class TestForLineRate:
    def test_oc3072_paper_configuration(self):
        config = CFDSConfig.for_line_rate("OC-3072", granularity=8)
        assert config.num_queues == 512
        assert config.dram_access_slots == 32
        assert config.granularity == 8
        assert config.num_banks == 256

    def test_oc768_paper_configuration(self):
        config = CFDSConfig.for_line_rate("OC-768", granularity=2)
        assert config.dram_access_slots == 8
        assert config.num_queues == 128

    def test_unknown_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            CFDSConfig.for_line_rate("OC-1", granularity=2)
