"""Tests for the CFDS tail-side simulator."""


from repro.core.config import CFDSConfig
from repro.core.scheduler import DRAMSchedulerSubsystem
from repro.core.tail_buffer import CFDSTailBuffer
from repro.types import Cell, TransferDirection


def _config(**overrides):
    defaults = dict(num_queues=8, dram_access_slots=8, granularity=2, num_banks=32)
    defaults.update(overrides)
    return CFDSConfig(**defaults)


def _cell(queue, seqno):
    return Cell(queue=queue, seqno=seqno)


class TestEvictionsThroughScheduler:
    def test_eviction_submits_write_request(self):
        config = _config()
        scheduler = DRAMSchedulerSubsystem(config)
        stored = []
        tail = CFDSTailBuffer(config, scheduler=scheduler,
                              evict_sink=lambda q, cells: (stored.append((q, cells)) or (q, 0)))
        for seqno in range(4):
            tail.step(_cell(0, seqno))
        assert stored, "a block must have been evicted"
        assert tail.result.dram_writes >= 1

    def test_write_requests_carry_block_ordinals(self):
        config = _config()
        scheduler = DRAMSchedulerSubsystem(config)
        tail = CFDSTailBuffer(config, scheduler=scheduler)
        for seqno in range(12):
            tail.step(_cell(3, seqno))
        directions = set()
        blocks = []
        for entry in scheduler.request_register.entries():
            directions.add(entry.request.direction)
            blocks.append(entry.request.block_index)
        for job, _ in scheduler._in_flight:
            directions.add(job.request.direction)
            blocks.append(job.request.block_index)
        issued = scheduler.dram.completed_count
        assert directions <= {TransferDirection.WRITE}
        assert sorted(blocks) == list(range(issued + len(blocks)))[issued:]

    def test_dropped_block_counts_cells(self):
        config = _config()
        tail = CFDSTailBuffer(config, evict_sink=lambda q, cells: None)
        for seqno in range(6):
            tail.step(_cell(0, seqno))
        assert tail.dropped_cells >= 2

    def test_default_sink_assigns_sequential_ordinals(self):
        config = _config()
        tail = CFDSTailBuffer(config)
        locations = []
        original = tail.evict_sink

        def spy(queue, cells):
            location = original(queue, cells)
            locations.append(location)
            return location

        tail.evict_sink = spy
        for seqno in range(8):
            tail.step(_cell(1, seqno))
        assert locations == [(1, 0), (1, 1), (1, 2)]

    def test_peek_and_pop_direct(self):
        config = _config()
        tail = CFDSTailBuffer(config)
        tail.step(_cell(2, 0))
        assert tail.peek_direct(2).seqno == 0
        assert [c.seqno for c in tail.pop_direct(2, 3)] == [0]
        assert tail.peek_direct(2) is None
        assert tail.occupancy(2) == 0
