"""Tests for the Ongoing Requests Register."""

import pytest

from repro.core.ongoing_register import OngoingRequestsRegister


class TestORR:
    def test_banks_stay_locked_for_exactly_length_periods(self):
        orr = OngoingRequestsRegister(length=3)
        orr.advance([7])
        assert 7 in orr
        orr.advance([])
        orr.advance([])
        assert 7 in orr
        orr.advance([])
        assert 7 not in orr

    def test_multiple_banks_per_period(self):
        orr = OngoingRequestsRegister(length=2)
        orr.advance([1, 2])
        orr.advance([3])
        assert orr.locked_banks() == {1, 2, 3}
        orr.advance([])
        assert orr.locked_banks() == {3}

    def test_zero_length_never_locks(self):
        orr = OngoingRequestsRegister(length=0)
        orr.advance([5])
        assert orr.locked_banks() == set()

    def test_advance_returns_retired_entry(self):
        orr = OngoingRequestsRegister(length=1)
        assert orr.advance([4]) == ()
        assert orr.advance([6]) == (4,)

    def test_contents_snapshot(self):
        orr = OngoingRequestsRegister(length=2)
        orr.advance([1])
        orr.advance([2, 3])
        assert orr.contents() == [(1,), (2, 3)]

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            OngoingRequestsRegister(length=-1)

    def test_len(self):
        assert len(OngoingRequestsRegister(length=5)) == 5
