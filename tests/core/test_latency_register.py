"""Tests for the latency shift register."""

from repro.core.latency_register import LatencyRegister


class TestLatencyRegister:
    def test_delays_by_exactly_length(self):
        register = LatencyRegister(length=4)
        outputs = [register.shift(i) for i in range(10)]
        assert outputs[:4] == [None] * 4
        assert outputs[4:] == [0, 1, 2, 3, 4, 5]

    def test_zero_length_passthrough(self):
        register = LatencyRegister(length=0)
        assert register.shift(9) == 9

    def test_peak_occupancy_tracked(self):
        register = LatencyRegister(length=5)
        for i in range(3):
            register.shift(i)
        for _ in range(10):
            register.shift(None)
        assert register.peak_occupancy == 3
        assert register.count() == 0
