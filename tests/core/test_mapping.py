"""Tests for the block-cyclic bank/group mapping (Figure 6)."""

import pytest

from repro.core.mapping import CFDSBankMapping
from repro.errors import ConfigurationError


@pytest.fixture
def mapping():
    # 32 banks, B=8, b=2 -> 4 banks per group, 8 groups, 16 queues.
    return CFDSBankMapping(num_queues=16, num_banks=32, dram_access_slots=8, granularity=2)


class TestStructure:
    def test_groups_and_banks_per_group(self, mapping):
        assert mapping.banks_per_group == 4
        assert mapping.num_groups == 8
        assert mapping.queues_per_group == 2

    def test_invalid_divisibility(self):
        with pytest.raises(ConfigurationError):
            CFDSBankMapping(num_queues=4, num_banks=32, dram_access_slots=8, granularity=3)
        with pytest.raises(ConfigurationError):
            CFDSBankMapping(num_queues=4, num_banks=30, dram_access_slots=8, granularity=2)

    def test_queues_per_group_rounds_up(self):
        mapping = CFDSBankMapping(num_queues=17, num_banks=32,
                                  dram_access_slots=8, granularity=2)
        assert mapping.queues_per_group == 3


class TestBankAssignment:
    def test_queue_stays_in_its_group(self, mapping):
        for queue in range(16):
            group = mapping.group_of(queue)
            for block in range(10):
                address = mapping.bank_of(queue, block)
                assert address.group == group
                assert group * 4 <= address.bank < (group + 1) * 4

    def test_block_cyclic_rotation(self, mapping):
        banks = [mapping.bank_of(5, block).bank_in_group for block in range(8)]
        assert banks == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_consecutive_blocks_never_collide_within_window(self, mapping):
        """B/b consecutive accesses to the same queue touch distinct banks."""
        window = mapping.banks_per_group
        for queue in range(16):
            for start in range(6):
                banks = {mapping.bank_of(queue, start + i).bank for i in range(window)}
                assert len(banks) == window

    def test_different_groups_use_disjoint_banks(self, mapping):
        banks_of_group = {}
        for queue in range(16):
            group = mapping.group_of(queue)
            banks_of_group.setdefault(group, set()).add(mapping.bank_of(queue, 0).bank)
        all_banks = [bank for banks in banks_of_group.values() for bank in banks]
        assert len(all_banks) == len(set(all_banks))

    def test_validation(self, mapping):
        with pytest.raises(ValueError):
            mapping.bank_of(99, 0)
        with pytest.raises(ValueError):
            mapping.bank_of(0, -1)


class TestAddressEncoding:
    def test_roundtrip(self, mapping):
        for queue in (0, 3, 15):
            for block in (0, 1, 7, 123):
                address = mapping.encode_address(queue, block)
                assert mapping.decode_queue_block(address) == (queue, block)
                assert mapping.decode_address(address) == mapping.bank_of(queue, block)

    def test_low_order_bits_are_zero(self, mapping):
        # Addresses are aligned to b x 64 bytes (Figure 6: the low-order bits
        # are always zero).
        alignment = mapping.granularity * 64
        for queue in range(4):
            assert mapping.encode_address(queue, 5) % alignment == 0

    def test_out_of_range_block(self):
        mapping = CFDSBankMapping(num_queues=4, num_banks=8, dram_access_slots=4,
                                  granularity=2, queue_capacity_blocks=16)
        with pytest.raises(ValueError):
            mapping.encode_address(0, 16)
