"""Tests for the head buffers' direct-acceptance (cut-through) paths."""


from repro.core.config import CFDSConfig
from repro.core.head_buffer import CFDSHeadBuffer
from repro.dram.store import DRAMQueueStore
from repro.rads.config import RADSConfig
from repro.rads.head_buffer import RADSHeadBuffer
from repro.types import Cell


class TestRADSAcceptDirect:
    def test_direct_cell_is_served_without_a_dram_read(self):
        config = RADSConfig(num_queues=2, granularity=2, lookahead=3)
        dram = DRAMQueueStore(2)   # empty, nothing backlogged
        buffer = RADSHeadBuffer(config, dram=dram)
        buffer.accept_direct(Cell(queue=1, seqno=0))
        assert buffer.counters.get(1) == 1
        buffer.step(1)
        served = [buffer.step(None) for _ in range(5)]
        granted = [c for c in served if c is not None]
        assert len(granted) == 1
        assert granted[0].queue == 1 and granted[0].seqno == 0
        assert buffer.result.dram_reads == 0

    def test_bypass_serve_counts(self):
        config = RADSConfig(num_queues=2, granularity=2, lookahead=2)
        dram = DRAMQueueStore(2)
        stash = {1: Cell(queue=1, seqno=0)}

        def bypass(queue, expected_seqno):
            cell = stash.get(queue)
            if cell is not None and cell.seqno == expected_seqno:
                del stash[queue]
                return cell
            return None

        buffer = RADSHeadBuffer(config, dram=dram, bypass_source=bypass)
        buffer.step(1)
        for _ in range(3):
            buffer.step(None)
        assert buffer.bypass_serves == 1
        assert buffer.result.zero_miss


class TestCFDSAcceptDirect:
    def test_direct_cell_served_in_order_with_fetched_cells(self):
        config = CFDSConfig(num_queues=4, dram_access_slots=4, granularity=2,
                            num_banks=8, lookahead=4, latency=4)
        dram = DRAMQueueStore(4)
        dram.push_many([Cell(queue=2, seqno=0), Cell(queue=2, seqno=1)])
        buffer = CFDSHeadBuffer(config, dram=dram)
        # Cell 2 of queue 2 never went to DRAM; it is accepted directly.
        buffer.accept_direct(Cell(queue=2, seqno=2))
        served = []
        for request in [2, 2, 2] + [None] * 20:
            cell = buffer.step(request)
            if cell is not None:
                served.append(cell.seqno)
        assert served == [0, 1, 2]
        assert buffer.result.zero_miss
