"""Tests for the FIFO Requests Register used by the DSA ablation."""

import pytest

from repro.core.request_register import FIFORequestRegister, RequestRegister
from repro.types import ReplenishRequest, TransferDirection


def _request(queue=0, slot=0, block=0):
    return ReplenishRequest(queue=queue, direction=TransferDirection.READ,
                            cells=2, issue_slot=slot, block_index=block)


class TestFIFORequestRegister:
    def test_policy_names(self):
        assert RequestRegister().policy == "oldest-ready"
        assert FIFORequestRegister().policy == "fifo"

    def test_issues_in_strict_fifo_order(self):
        rr = FIFORequestRegister()
        rr.push(_request(queue=0), bank=1, slot=0)
        rr.push(_request(queue=1), bank=2, slot=1)
        assert rr.select(set()).request.queue == 0
        assert rr.select(set()).request.queue == 1

    def test_stalls_when_head_is_blocked_even_if_younger_is_ready(self):
        rr = FIFORequestRegister()
        rr.push(_request(queue=0), bank=1, slot=0)
        rr.push(_request(queue=1), bank=2, slot=1)
        assert rr.select(locked_banks={1}) is None
        assert rr.occupancy() == 2
        assert rr.max_skips_observed >= 1

    def test_issues_head_once_unblocked(self):
        rr = FIFORequestRegister()
        rr.push(_request(queue=0), bank=1, slot=0)
        rr.select(locked_banks={1})
        entry = rr.select(locked_banks=set())
        assert entry is not None and entry.request.queue == 0

    def test_scheduler_accepts_policy_names(self):
        from repro.core.config import CFDSConfig
        from repro.core.scheduler import DRAMSchedulerSubsystem

        config = CFDSConfig(num_queues=8, dram_access_slots=8, granularity=2, num_banks=32)
        fifo = DRAMSchedulerSubsystem(config, dsa_policy="fifo")
        assert isinstance(fifo.request_register, FIFORequestRegister)
        with pytest.raises(ValueError):
            DRAMSchedulerSubsystem(config, dsa_policy="round-robin")
