"""Tests for the threshold tail MMA."""

import pytest

from repro.mma.tail_mma import ThresholdTailMMA


class TestThresholdTailMMA:
    def test_selects_queue_with_full_block(self):
        mma = ThresholdTailMMA(granularity=4)
        assert mma.select([2, 4, 1]) == 1

    def test_prefers_largest_occupancy(self):
        mma = ThresholdTailMMA(granularity=4)
        assert mma.select([6, 4, 9]) == 2

    def test_no_queue_eligible(self):
        mma = ThresholdTailMMA(granularity=4)
        assert mma.select([3, 3, 0]) is None

    def test_granularity_one_always_eligible_when_nonempty(self):
        mma = ThresholdTailMMA(granularity=1)
        assert mma.select([0, 0, 1]) == 2
        assert mma.select([0, 0, 0]) is None

    def test_required_sram_cells(self):
        assert ThresholdTailMMA.required_sram_cells(num_queues=4, granularity=3) == 4 * 2 + 3

    def test_invalid_granularity(self):
        with pytest.raises(ValueError):
            ThresholdTailMMA(granularity=0)
