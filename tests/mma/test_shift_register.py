"""Tests for the fixed-delay shift register."""

import pytest

from repro.mma.shift_register import ShiftRegister


class TestShiftRegister:
    def test_item_emerges_after_exactly_length_shifts(self):
        register = ShiftRegister(length=3)
        assert register.shift("a") is None
        assert register.shift("b") is None
        assert register.shift("c") is None
        assert register.shift("d") == "a"
        assert register.shift(None) == "b"

    def test_zero_length_is_a_wire(self):
        register = ShiftRegister(length=0)
        assert register.shift("x") == "x"
        assert register.shift(None) is None

    def test_bubbles_propagate(self):
        register = ShiftRegister(length=2)
        register.shift("a")
        register.shift(None)
        assert register.shift("b") == "a"
        assert register.shift(None) is None
        assert register.shift(None) == "b"

    def test_contents_head_first(self):
        register = ShiftRegister(length=3)
        register.shift(1)
        register.shift(2)
        assert register.contents() == [None, 1, 2]

    def test_occupied_and_count(self):
        register = ShiftRegister(length=4)
        register.shift(1)
        register.shift(None)
        register.shift(3)
        assert register.occupied() == [1, 3]
        assert register.count() == 2

    def test_len(self):
        assert len(ShiftRegister(length=7)) == 7

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            ShiftRegister(length=-1)

    def test_fifo_order_preserved_over_long_sequence(self):
        register = ShiftRegister(length=5)
        out = []
        for i in range(50):
            result = register.shift(i)
            if result is not None:
                out.append(result)
        assert out == list(range(45))
