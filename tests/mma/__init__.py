"""Tests for the mma layer."""
