"""Tests for the Most Deficit Queue First MMA."""

from repro.mma.mdqf import MDQF


class TestMDQF:
    def test_selects_largest_deficit(self):
        mdqf = MDQF()
        counters = [4, 1, 0]
        lookahead = [0, 1, 1, 2, 2, 2]
        # deficits: q0 = 1-4 = -3, q1 = 2-1 = 1, q2 = 3-0 = 3
        assert mdqf.select(counters, lookahead) == 2

    def test_negative_counters_count_as_deficit(self):
        mdqf = MDQF()
        assert mdqf.select([-3, 0], [1]) == 0

    def test_idle_system_returns_none(self):
        mdqf = MDQF()
        assert mdqf.select([2, 2], [None, None]) is None

    def test_tie_breaks_to_lowest_index(self):
        mdqf = MDQF()
        assert mdqf.select([0, 0], [0, 1]) == 0

    def test_name(self):
        assert MDQF().name == "mdqf"
