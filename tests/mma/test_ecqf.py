"""Tests for the Earliest Critical Queue First MMA."""


from repro.mma.ecqf import ECQF


class TestPaperExample:
    def test_section3_example_selects_queue_1(self):
        """The worked example of Section 3: Q=4, B=3, occupancy (1,2,1,3) and
        lookahead 3 3 1 1 1 ... — queue 1 (index 0 here) must be selected,
        otherwise it misses after 5 slots."""
        # The figure's queues are 1-indexed; index 0 below is 'queue 1'.
        counters = [1, 2, 1, 3]
        # Lookahead head-to-tail: requests for queues 1,1,1,3,3,... (paper
        # figure shows "3 3 1 1 1" written tail-to-head).
        lookahead = [0, 0, 0, 2, 2, 1]
        assert ECQF().select(counters, lookahead) == 0


class TestCriticality:
    def test_first_critical_queue_wins(self):
        ecqf = ECQF()
        counters = [1, 0, 5]
        lookahead = [0, 1, 0, 2]
        # queue 1 runs dry at the second request (counter 0), queue 0 at the
        # third (counter 1 but two requests): queue 1 becomes critical first.
        assert ecqf.select(counters, lookahead) == 1

    def test_order_within_lookahead_matters(self):
        ecqf = ECQF()
        counters = [0, 0]
        assert ecqf.select(counters, [0, 1]) == 0
        assert ecqf.select(counters, [1, 0]) == 1

    def test_bubbles_are_ignored(self):
        ecqf = ECQF()
        assert ecqf.select([0, 1], [None, None, 1, None, 1]) == 1

    def test_negative_counter_takes_priority(self):
        # A queue whose counter already went negative has unmet requests older
        # than anything in the lookahead: it must be replenished first.
        ecqf = ECQF()
        counters = [1, -2, -1]
        lookahead = [0, 0, 0]
        assert ecqf.select(counters, lookahead) == 1

    def test_no_critical_queue_without_fallback(self):
        ecqf = ECQF(fallback_to_most_deficit=False)
        assert ecqf.select([3, 3], [0, 1, 0]) is None

    def test_no_critical_queue_with_fallback_picks_most_deficit(self):
        ecqf = ECQF(fallback_to_most_deficit=True)
        # Neither queue goes negative, but queue 0 has unmet demand (3 > 2).
        assert ecqf.select([2, 5], [0, 0, 0, 1]) == 0

    def test_fallback_does_nothing_when_every_demand_is_covered(self):
        ecqf = ECQF(fallback_to_most_deficit=True)
        # Queue 2 has the lowest occupancy but no pending request, and the
        # requested queues already hold more cells than they owe.
        assert ecqf.select([4, 3, 0], [0, 1]) is None

    def test_idle_lookahead_returns_none(self):
        assert ECQF().select([1, 1], [None, None]) is None
        assert ECQF(fallback_to_most_deficit=False).select([1, 1], []) is None


class TestSimulateDrainHelper:
    def test_simulate_drain(self):
        from repro.mma.base import HeadMMA

        remaining = HeadMMA.simulate_drain([2, 1], [0, 1, 0, 0, None])
        assert remaining == [-1, 0]
