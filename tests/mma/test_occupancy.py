"""Tests for the MMA occupancy counters."""

import pytest

from repro.mma.occupancy import OccupancyCounters


class TestOccupancyCounters:
    def test_initial_values(self):
        counters = OccupancyCounters(num_queues=3, initial=2)
        assert counters.snapshot() == [2, 2, 2]
        assert counters.total() == 6

    def test_add_and_consume(self):
        counters = OccupancyCounters(num_queues=2)
        counters.add(0, 4)
        counters.consume(0)
        counters.consume(0, 2)
        assert counters.get(0) == 1
        assert counters.get(1) == 0

    def test_counters_can_go_negative(self):
        # Bookkeeping may go negative transiently in a closed-loop system;
        # the counters themselves do not clamp.
        counters = OccupancyCounters(num_queues=1)
        counters.consume(0)
        assert counters.get(0) == -1
        assert counters.negative_queues() == [0]

    def test_min_queue(self):
        counters = OccupancyCounters(num_queues=3)
        counters.add(0, 5)
        counters.add(2, 1)
        assert counters.min_queue() == 1

    def test_min_queue_tie_breaks_to_lowest_index(self):
        counters = OccupancyCounters(num_queues=3, initial=1)
        assert counters.min_queue() == 0

    def test_snapshot_is_a_copy(self):
        counters = OccupancyCounters(num_queues=2)
        snapshot = counters.snapshot()
        snapshot[0] = 99
        assert counters.get(0) == 0

    def test_as_dict(self):
        counters = OccupancyCounters(num_queues=2)
        counters.add(1, 3)
        assert counters.as_dict() == {0: 0, 1: 3}

    def test_bounds_checked(self):
        counters = OccupancyCounters(num_queues=2)
        with pytest.raises(ValueError):
            counters.get(5)
        with pytest.raises(ValueError):
            OccupancyCounters(num_queues=0)
        with pytest.raises(ValueError):
            OccupancyCounters(num_queues=1, initial=-1)
