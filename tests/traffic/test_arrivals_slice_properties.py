"""Property-based tests of the streaming contract: for every arrival
process, the concatenation of ``arrivals_slice`` over *any* partition of
``[0, N)`` into consecutive windows equals one ``arrivals(N)`` call.

This is the invariant the whole chunked/streamed execution path rests on
(and what the fuzzer's streamed legs exercise end-to-end); here hypothesis
attacks it directly with adversarial window boundaries — empty windows,
single-slot windows, one giant window — instead of the fixed chunk sizes
the unit tests use.  ``derandomize=True`` keeps CI deterministic.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.traffic.arrivals import (  # noqa: E402
    BernoulliArrivals,
    BurstyArrivals,
    DeterministicArrivals,
    HotspotArrivals,
    MarkovOnOffArrivals,
    ParetoBurstArrivals,
    RoundRobinArrivals,
    TraceArrivals,
    ZipfArrivals,
)

COMMON = dict(deadline=None, derandomize=True)

#: (name, factory) for every registered process; fresh instances per draw
#: because the stochastic ones carry RNG state across calls.
PROCESSES = [
    ("deterministic",
     lambda seed: DeterministicArrivals([0, None, 1, 1, None, 2])),
    ("trace",
     lambda seed: TraceArrivals([2, None, 0, 1, None, None, 1, 0])),
    ("round_robin", lambda seed: RoundRobinArrivals(3, load=0.7, seed=seed)),
    ("bernoulli", lambda seed: BernoulliArrivals(4, load=0.9, seed=seed)),
    ("hotspot", lambda seed: HotspotArrivals(5, hot_queues=[1, 3],
                                             hot_fraction=0.8, load=0.95,
                                             seed=seed)),
    ("bursty", lambda seed: BurstyArrivals(4, mean_burst_cells=3.0,
                                           load=0.8, seed=seed)),
    ("markov_on_off", lambda seed: MarkovOnOffArrivals(
        3, mean_on_slots=5.0, mean_off_slots=9.0, peak_rate=0.9, seed=seed)),
    ("pareto", lambda seed: ParetoBurstArrivals(4, alpha=1.2,
                                                min_burst_cells=2,
                                                load=0.85, seed=seed)),
    ("zipf", lambda seed: ZipfArrivals(6, exponent=1.4, load=1.0,
                                       seed=seed)),
]


@st.composite
def _partitions(draw):
    """A total slot count plus window widths that sum to it (zeros allowed:
    an empty feed must be a no-op, not a resync)."""
    total = draw(st.integers(0, 160))
    widths, left = [], total
    while left > 0:
        width = draw(st.integers(0, left))
        widths.append(width)
        left -= width
    if draw(st.booleans()):
        widths.append(0)
    return total, widths


@pytest.mark.parametrize("name,factory", PROCESSES,
                         ids=[name for name, _ in PROCESSES])
@given(partition=_partitions(), seed=st.integers(0, 2 ** 16))
@settings(max_examples=60, **COMMON)
def test_slice_concatenation_equals_one_shot(name, factory, partition, seed):
    total, widths = partition
    one_shot = list(factory(seed).arrivals(total))

    chunked_process = factory(seed)
    chunked, cursor = [], 0
    for width in widths:
        chunked.extend(chunked_process.arrivals_slice(cursor, width))
        cursor += width

    assert cursor == total
    assert chunked == one_shot, (
        f"{name}: windows {widths} disagree with one arrivals({total}) call")


@pytest.mark.parametrize("name,factory", PROCESSES,
                         ids=[name for name, _ in PROCESSES])
@given(total=st.integers(0, 120), width=st.integers(1, 17),
       seed=st.integers(0, 2 ** 16))
@settings(max_examples=40, **COMMON)
def test_fixed_width_windows_equal_one_shot(name, factory, total, width,
                                            seed):
    """The streaming engine's actual access pattern: constant chunk size
    with a ragged final window."""
    one_shot = list(factory(seed).arrivals(total))
    chunked_process = factory(seed)
    chunked = []
    for start in range(0, total, width):
        count = min(width, total - start)
        chunked.extend(chunked_process.arrivals_slice(start, count))
    assert chunked == one_shot
