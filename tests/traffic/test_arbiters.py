"""Tests for the request-generating arbiters."""

import pytest

from repro.traffic.arbiters import (
    IntermittentArbiter,
    LongestQueueArbiter,
    OldestCellArbiter,
    RandomArbiter,
    RoundRobinAdversary,
    StridedAdversary,
    TraceArbiter,
)


class TestRoundRobinAdversary:
    def test_cycles_all_queues_with_unbounded_backlog(self):
        arbiter = RoundRobinAdversary(num_queues=4)
        backlog = [10] * 4
        assert [arbiter.next_request(s, backlog) for s in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_skips_empty_queues(self):
        arbiter = RoundRobinAdversary(num_queues=3)
        backlog = [5, 0, 5]
        assert [arbiter.next_request(s, backlog) for s in range(4)] == [0, 2, 0, 2]

    def test_idles_when_everything_empty(self):
        arbiter = RoundRobinAdversary(num_queues=3)
        assert arbiter.next_request(0, [0, 0, 0]) is None

    def test_start_queue(self):
        arbiter = RoundRobinAdversary(num_queues=4, start_queue=2)
        assert arbiter.next_request(0, [1] * 4) == 2

    def test_invalid(self):
        with pytest.raises(ValueError):
            RoundRobinAdversary(num_queues=0)


class TestRandomArbiter:
    def test_only_requests_backlogged_queues(self):
        arbiter = RandomArbiter(num_queues=4, load=1.0, seed=1)
        backlog = [0, 3, 0, 1]
        for slot in range(200):
            request = arbiter.next_request(slot, backlog)
            assert request in (1, 3)

    def test_idles_at_partial_load(self):
        arbiter = RandomArbiter(num_queues=2, load=0.3, seed=2)
        requests = [arbiter.next_request(s, [5, 5]) for s in range(2000)]
        busy = sum(1 for r in requests if r is not None)
        assert 400 < busy < 800

    def test_idles_when_no_backlog(self):
        arbiter = RandomArbiter(num_queues=2, load=1.0, seed=3)
        assert arbiter.next_request(0, [0, 0]) is None


class TestLongestQueueArbiter:
    def test_selects_longest(self):
        arbiter = LongestQueueArbiter(num_queues=3)
        assert arbiter.next_request(0, [1, 7, 3]) == 1

    def test_ties_to_lowest_index(self):
        arbiter = LongestQueueArbiter(num_queues=3)
        assert arbiter.next_request(0, [5, 5, 5]) == 0

    def test_idle_when_empty(self):
        arbiter = LongestQueueArbiter(num_queues=2)
        assert arbiter.next_request(0, [0, 0]) is None


class TestOldestCellArbiter:
    def test_work_conserving(self):
        arbiter = OldestCellArbiter(num_queues=3)
        for slot in range(10):
            assert arbiter.next_request(slot, [1, 1, 1]) is not None

    def test_rotates_across_queues(self):
        arbiter = OldestCellArbiter(num_queues=3)
        requests = [arbiter.next_request(s, [5, 5, 5]) for s in range(9)]
        assert set(requests) == {0, 1, 2}


class TestStridedAdversary:
    def test_defaults_match_round_robin_adversary(self):
        strided = StridedAdversary(num_queues=5)
        round_robin = RoundRobinAdversary(num_queues=5)
        backlog = [3] * 5
        for slot in range(20):
            assert strided.next_request(slot, backlog) == \
                   round_robin.next_request(slot, backlog)

    def test_burst_repeats_queue(self):
        arbiter = StridedAdversary(num_queues=4, burst=3)
        requests = [arbiter.next_request(s, [10] * 4) for s in range(7)]
        assert requests == [0, 0, 0, 1, 1, 1, 2]

    def test_coprime_stride_visits_every_queue(self):
        arbiter = StridedAdversary(num_queues=8, stride=3)
        requests = {arbiter.next_request(s, [10] * 8) for s in range(8)}
        assert requests == set(range(8))

    def test_skips_empty_queues(self):
        arbiter = StridedAdversary(num_queues=4, burst=2)
        backlog = [2, 0, 2, 0]
        requests = [arbiter.next_request(s, backlog) for s in range(4)]
        assert requests == [0, 0, 2, 2]

    def test_idles_when_everything_empty(self):
        arbiter = StridedAdversary(num_queues=3)
        assert arbiter.next_request(0, [0, 0, 0]) is None

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            StridedAdversary(num_queues=0)
        with pytest.raises(ValueError):
            StridedAdversary(num_queues=2, stride=0)
        with pytest.raises(ValueError):
            StridedAdversary(num_queues=2, burst=0)


class TestIntermittentArbiter:
    def test_off_phase_issues_nothing(self):
        arbiter = IntermittentArbiter(RoundRobinAdversary(4), on_slots=3, off_slots=2)
        backlog = [10] * 4
        requests = [arbiter.next_request(s, backlog) for s in range(10)]
        assert requests == [0, 1, 2, None, None, 3, 0, 1, None, None]

    def test_zero_off_slots_is_transparent(self):
        inner = RoundRobinAdversary(3)
        arbiter = IntermittentArbiter(RoundRobinAdversary(3), on_slots=4, off_slots=0)
        backlog = [5] * 3
        for slot in range(9):
            assert arbiter.next_request(slot, backlog) == \
                   inner.next_request(slot, backlog)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            IntermittentArbiter(RoundRobinAdversary(2), on_slots=0, off_slots=1)
        with pytest.raises(ValueError):
            IntermittentArbiter(RoundRobinAdversary(2), on_slots=1, off_slots=-1)


class TestTraceArbiter:
    def test_replays_then_idles(self):
        arbiter = TraceArbiter([0, None, 1])
        backlog = [5, 5]
        assert [arbiter.next_request(s, backlog) for s in range(5)] == \
               [0, None, 1, None, None]

    def test_inadmissible_recorded_requests_are_skipped(self):
        arbiter = TraceArbiter([0, 1, 0])
        backlog = [5, 0]
        assert [arbiter.next_request(s, backlog) for s in range(3)] == [0, None, 0]

    def test_length(self):
        assert len(TraceArbiter([None, 2])) == 2
