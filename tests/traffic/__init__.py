"""Tests for the traffic layer."""
