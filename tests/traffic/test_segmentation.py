"""Tests for packet segmentation and reassembly."""

import pytest

from repro.traffic.packet import Packet
from repro.traffic.segmentation import Reassembler, Segmenter


class TestSegmenter:
    def test_cell_count_matches_packet_size(self):
        segmenter = Segmenter(num_queues=4)
        cells = segmenter.segment(Packet(packet_id=1, queue=2, size_bytes=200))
        assert len(cells) == 4  # ceil(200/64)
        assert all(c.queue == 2 for c in cells)
        assert [c.offset for c in cells] == [0, 1, 2, 3]
        assert [c.last for c in cells] == [False, False, False, True]

    def test_seqnos_are_contiguous_per_queue_across_packets(self):
        segmenter = Segmenter(num_queues=2)
        first = segmenter.segment(Packet(packet_id=1, queue=0, size_bytes=128))
        second = segmenter.segment(Packet(packet_id=2, queue=0, size_bytes=64))
        other = segmenter.segment(Packet(packet_id=3, queue=1, size_bytes=64))
        assert [c.seqno for c in first] == [0, 1]
        assert [c.seqno for c in second] == [2]
        assert [c.seqno for c in other] == [0]
        assert segmenter.cells_emitted(0) == 3

    def test_rejects_unknown_queue(self):
        segmenter = Segmenter(num_queues=1)
        with pytest.raises(ValueError):
            segmenter.segment(Packet(packet_id=1, queue=5, size_bytes=64))


class TestReassembler:
    def test_roundtrip_single_packet(self):
        segmenter = Segmenter(num_queues=1)
        packet = Packet(packet_id=7, queue=0, size_bytes=300)
        reassembler = Reassembler()
        rebuilt = None
        for cell in segmenter.segment(packet):
            rebuilt = reassembler.push(cell)
        assert rebuilt is not None
        assert rebuilt.packet_id == 7
        assert rebuilt.num_cells == packet.num_cells
        assert reassembler.out_of_order_events == 0
        assert reassembler.pending_packets == 0

    def test_interleaved_queues_reassemble_independently(self):
        segmenter = Segmenter(num_queues=2)
        p0 = segmenter.segment(Packet(packet_id=1, queue=0, size_bytes=128))
        p1 = segmenter.segment(Packet(packet_id=2, queue=1, size_bytes=128))
        reassembler = Reassembler()
        done = []
        for cell in [p0[0], p1[0], p0[1], p1[1]]:
            packet = reassembler.push(cell)
            if packet:
                done.append(packet.packet_id)
        assert done == [1, 2]

    def test_out_of_order_cells_detected(self):
        segmenter = Segmenter(num_queues=1)
        cells = segmenter.segment(Packet(packet_id=1, queue=0, size_bytes=192))
        reassembler = Reassembler()
        reassembler.push(cells[1])
        reassembler.push(cells[0])
        reassembler.push(cells[2])
        assert reassembler.out_of_order_events > 0

    def test_synthetic_cells_without_packet_are_ignored(self):
        from repro.types import Cell

        reassembler = Reassembler()
        assert reassembler.push(Cell(queue=0, seqno=0)) is None
        assert reassembler.pending_packets == 0
