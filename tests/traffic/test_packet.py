"""Tests for the packet model."""

import pytest

from repro.traffic.packet import Packet


class TestPacket:
    def test_num_cells_rounds_up(self):
        assert Packet(packet_id=1, queue=0, size_bytes=64).num_cells == 1
        assert Packet(packet_id=2, queue=0, size_bytes=65).num_cells == 2
        assert Packet(packet_id=3, queue=0, size_bytes=1500).num_cells == 24
        assert Packet(packet_id=4, queue=0, size_bytes=40).num_cells == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            Packet(packet_id=1, queue=0, size_bytes=0)
        with pytest.raises(ValueError):
            Packet(packet_id=1, queue=-1, size_bytes=64)

    def test_immutability(self):
        packet = Packet(packet_id=1, queue=2, size_bytes=128)
        with pytest.raises(AttributeError):
            packet.queue = 3
