"""The batch ``arrivals()`` fast paths are stream-identical to per-slot
``next_arrival`` calls — the property both simulation engines rely on when
they pre-generate arrival plans."""

import pytest

from repro.traffic.arrivals import (
    BernoulliArrivals,
    BurstyArrivals,
    DeterministicArrivals,
    HotspotArrivals,
    MarkovOnOffArrivals,
    ParetoBurstArrivals,
    RoundRobinArrivals,
    TraceArrivals,
    ZipfArrivals,
)

#: (class, kwargs) for every stateful stochastic process: the batch must
#: continue the RNG stream exactly where the previous batch left off.
STATEFUL_CASES = [
    (BernoulliArrivals, dict(num_queues=8, load=0.85, seed=3)),
    (BernoulliArrivals, dict(num_queues=8, load=0.85,
                             weights=[1, 2, 0, 4, 5, 6, 7, 8], seed=3)),
    (BernoulliArrivals, dict(num_queues=3, load=1.0, seed=3)),
    (HotspotArrivals, dict(num_queues=8, hot_queues=[0, 1],
                           hot_fraction=0.8, load=0.9, seed=4)),
    (ZipfArrivals, dict(num_queues=8, exponent=1.2, load=0.85, seed=5)),
    (BurstyArrivals, dict(num_queues=8, mean_burst_cells=24.0, load=0.9,
                          seed=6)),
    (MarkovOnOffArrivals, dict(num_queues=8, mean_on_slots=30.0,
                               mean_off_slots=90.0, peak_rate=0.9, seed=7)),
    (ParetoBurstArrivals, dict(num_queues=8, alpha=1.4, min_burst_cells=4,
                               load=0.8, seed=8)),
    (RoundRobinArrivals, dict(num_queues=8, load=0.7, seed=9)),
    (RoundRobinArrivals, dict(num_queues=8, load=1.0, seed=9)),
]

_IDS = [f"{cls.__name__}-{i}" for i, (cls, _) in enumerate(STATEFUL_CASES)]


@pytest.mark.parametrize("cls,kwargs", STATEFUL_CASES, ids=_IDS)
def test_batch_is_stream_identical(cls, kwargs):
    per_slot_source = cls(**kwargs)
    batch_source = cls(**kwargs)
    per_slot = [per_slot_source.next_arrival(slot) for slot in range(4000)]
    batch = list(batch_source.arrivals(4000))
    assert batch == per_slot


@pytest.mark.parametrize("cls,kwargs", STATEFUL_CASES, ids=_IDS)
def test_split_batches_continue_the_stream(cls, kwargs):
    """Two consecutive batch calls must consume the RNG exactly like one —
    the state (burst remainders, on/off chains) carries across calls."""
    per_slot_source = cls(**kwargs)
    batch_source = cls(**kwargs)
    per_slot = [per_slot_source.next_arrival(slot) for slot in range(3000)]
    batch = list(batch_source.arrivals(1100)) + list(batch_source.arrivals(1900))
    assert batch == per_slot


@pytest.mark.parametrize("cls,kwargs", STATEFUL_CASES, ids=_IDS)
def test_batch_returns_prefilled_list(cls, kwargs):
    """The batch form fills a preallocated list (no generator re-wrapping in
    the engines)."""
    source = cls(**kwargs)
    result = source.arrivals(128)
    assert isinstance(result, list)
    assert len(result) == 128


@pytest.mark.parametrize("cls", [DeterministicArrivals, TraceArrivals])
def test_slot_indexed_batches_match_per_slot(cls):
    pattern = [0, None, 3, 2, None, 1]
    per_slot_source = cls(pattern)
    batch_source = cls(pattern)
    per_slot = [per_slot_source.next_arrival(slot) for slot in range(50)]
    assert list(batch_source.arrivals(50)) == per_slot


@pytest.mark.parametrize("cls", [DeterministicArrivals, TraceArrivals])
def test_slot_indexed_batches_restart_at_slot_zero(cls):
    """Slot-indexed processes are stateless: every ``arrivals`` call starts
    at slot 0, exactly like the generic generator they override."""
    pattern = [0, None, 3]
    source = cls(pattern)
    first = list(source.arrivals(5))
    second = list(source.arrivals(5))
    assert first == second
    assert first[:3] == pattern


def test_trace_batch_pads_with_idle_slots():
    source = TraceArrivals([1, 2])
    assert source.arrivals(5) == [1, 2, None, None, None]
    assert source.arrivals(1) == [1]


def test_bernoulli_all_zero_weights_raise_on_first_draw():
    """The degenerate configuration keeps choices()'s error semantics: the
    failure surfaces when a cell must actually be drawn."""
    source = BernoulliArrivals(4, load=1.0, weights=[0, 0, 0, 0], seed=1)
    with pytest.raises(ValueError):
        source.arrivals(10)


# --------------------------------------------------------------------- #
# arrivals_slice — the chunked-execution window API
# --------------------------------------------------------------------- #

@pytest.mark.parametrize("cls,kwargs", STATEFUL_CASES, ids=_IDS)
def test_slices_tile_into_the_monolithic_stream(cls, kwargs):
    """Consecutive arrivals_slice windows concatenate to one arrivals()
    call — the property the streaming engine rests on."""
    monolithic = list(cls(**kwargs).arrivals(5000))
    chunked_source = cls(**kwargs)
    chunked = []
    for start, count in ((0, 1), (1, 1024), (1025, 137), (1162, 3838)):
        chunked.extend(chunked_source.arrivals_slice(start, count))
    assert chunked == monolithic


@pytest.mark.parametrize("cls,kwargs", STATEFUL_CASES, ids=_IDS)
def test_stochastic_processes_declare_slot_invariance(cls, kwargs):
    assert cls(**kwargs).slot_invariant is True


def test_deterministic_slice_is_offset_aware():
    pattern = [0, None, 1, 2, None]
    source = DeterministicArrivals(pattern)
    full = source.arrivals(40)
    for start, count in ((0, 7), (3, 11), (5, 5), (13, 27)):
        assert source.arrivals_slice(start, count) \
            == full[start:start + count], (start, count)
    assert source.slot_invariant is False


def test_trace_slice_is_offset_aware_and_pads():
    pattern = [3, None, 1, 0]
    source = TraceArrivals(pattern)
    assert source.arrivals_slice(0, 4) == pattern
    assert source.arrivals_slice(2, 4) == [1, 0, None, None]
    assert source.arrivals_slice(10, 3) == [None, None, None]
    assert source.slot_invariant is False


def test_default_slice_calls_next_arrival_with_absolute_slots():
    from repro.traffic.arrivals import ArrivalProcess

    class SlotEcho(ArrivalProcess):
        def next_arrival(self, slot):
            return slot

    source = SlotEcho()
    assert source.arrivals_slice(5, 3) == [5, 6, 7]
    # Window zero routes through the subclass's own arrivals() batch, so a
    # custom batch override keeps its monolithic behaviour.
    assert list(source.arrivals_slice(0, 3)) == [0, 1, 2]
