"""Tests for trace recording and replay."""

import pytest

from repro.traffic.arbiters import RoundRobinAdversary
from repro.traffic.arrivals import RoundRobinArrivals
from repro.traffic.trace import TraceRecorder, TrafficTrace


class TestTrafficTrace:
    def test_append_and_accessors(self):
        trace = TrafficTrace()
        trace.append(1, None)
        trace.append(None, 2)
        assert len(trace) == 2
        assert trace.arrivals() == [1, None]
        assert trace.requests() == [None, 2]

    def test_save_and_load_roundtrip(self, tmp_path):
        trace = TrafficTrace()
        trace.append(3, 1)
        trace.append(None, None)
        trace.append(0, 4)
        path = tmp_path / "trace.csv"
        trace.save(path)
        loaded = TrafficTrace.load(path)
        assert loaded.events == trace.events

    def test_load_skips_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("# header\n1,2\n\n-,3\n")
        loaded = TrafficTrace.load(path)
        assert loaded.events == [(1, 2), (None, 3)]

    def test_load_rejects_malformed_lines(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("1,2,3\n")
        with pytest.raises(ValueError):
            TrafficTrace.load(path)

    def test_iteration(self):
        trace = TrafficTrace()
        trace.append(1, 1)
        assert list(trace) == [(1, 1)]


class TestTraceRecorder:
    def test_records_generated_events(self):
        recorder = TraceRecorder(arrivals=RoundRobinArrivals(2),
                                 arbiter=RoundRobinAdversary(2))
        backlog = [5, 5]
        for slot in range(4):
            recorder.next_events(slot, backlog)
        assert recorder.trace.arrivals() == [0, 1, 0, 1]
        assert recorder.trace.requests() == [0, 1, 0, 1]

    def test_handles_missing_components(self):
        recorder = TraceRecorder()
        assert recorder.next_events(0, []) == (None, None)
