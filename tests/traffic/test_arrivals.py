"""Tests for the arrival processes."""

import pytest

from repro.traffic.arrivals import (
    BernoulliArrivals,
    BurstyArrivals,
    DeterministicArrivals,
    HotspotArrivals,
    MarkovOnOffArrivals,
    ParetoBurstArrivals,
    RoundRobinArrivals,
    TraceArrivals,
    ZipfArrivals,
)


class TestDeterministicArrivals:
    def test_replays_and_wraps(self):
        arrivals = DeterministicArrivals([0, None, 2])
        assert [arrivals.next_arrival(s) for s in range(6)] == [0, None, 2, 0, None, 2]

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            DeterministicArrivals([])


class TestRoundRobinArrivals:
    def test_full_load_cycles_queues(self):
        arrivals = RoundRobinArrivals(num_queues=3)
        assert [arrivals.next_arrival(s) for s in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_partial_load_produces_idle_slots(self):
        arrivals = RoundRobinArrivals(num_queues=2, load=0.5, seed=1)
        slots = [arrivals.next_arrival(s) for s in range(2000)]
        idle = sum(1 for s in slots if s is None)
        assert 700 < idle < 1300


class TestBernoulliArrivals:
    def test_load_respected(self):
        arrivals = BernoulliArrivals(num_queues=4, load=0.25, seed=3)
        slots = [arrivals.next_arrival(s) for s in range(4000)]
        busy = sum(1 for s in slots if s is not None)
        assert 800 < busy < 1200

    def test_all_queues_seen_under_uniform_weights(self):
        arrivals = BernoulliArrivals(num_queues=4, load=1.0, seed=5)
        seen = {arrivals.next_arrival(s) for s in range(500)}
        assert seen == {0, 1, 2, 3}

    def test_weights_bias_selection(self):
        arrivals = BernoulliArrivals(num_queues=2, load=1.0, weights=[9.0, 1.0], seed=7)
        slots = [arrivals.next_arrival(s) for s in range(2000)]
        assert slots.count(0) > 3 * slots.count(1)

    def test_validation(self):
        with pytest.raises(ValueError):
            BernoulliArrivals(num_queues=0)
        with pytest.raises(ValueError):
            BernoulliArrivals(num_queues=2, load=1.5)
        with pytest.raises(ValueError):
            BernoulliArrivals(num_queues=2, weights=[1.0])
        with pytest.raises(ValueError):
            BernoulliArrivals(num_queues=2, weights=[1.0, -1.0])

    def test_reproducible_with_same_seed(self):
        a = BernoulliArrivals(num_queues=4, load=0.8, seed=42)
        b = BernoulliArrivals(num_queues=4, load=0.8, seed=42)
        assert [a.next_arrival(s) for s in range(100)] == [b.next_arrival(s) for s in range(100)]


class TestHotspotArrivals:
    def test_hot_queues_dominate(self):
        arrivals = HotspotArrivals(num_queues=8, hot_queues=[0], hot_fraction=0.9,
                                   load=1.0, seed=11)
        slots = [arrivals.next_arrival(s) for s in range(4000)]
        hot = slots.count(0)
        assert hot > 0.8 * len(slots)

    def test_validation(self):
        with pytest.raises(ValueError):
            HotspotArrivals(num_queues=4, hot_queues=[])
        with pytest.raises(ValueError):
            HotspotArrivals(num_queues=4, hot_queues=[9])
        with pytest.raises(ValueError):
            HotspotArrivals(num_queues=4, hot_queues=[0], hot_fraction=1.5)


class TestBurstyArrivals:
    def test_produces_runs_of_same_queue(self):
        arrivals = BurstyArrivals(num_queues=8, mean_burst_cells=16, load=1.0, seed=13)
        slots = [arrivals.next_arrival(s) for s in range(2000)]
        # Count how often consecutive busy slots keep the same queue: with a
        # mean burst of 16 this should be the overwhelming majority.
        same = sum(1 for a, b in zip(slots, slots[1:])
                   if a is not None and a == b)
        assert same > 1500

    def test_mean_burst_about_right(self):
        arrivals = BurstyArrivals(num_queues=4, mean_burst_cells=8, load=1.0, seed=17)
        slots = [arrivals.next_arrival(s) for s in range(8000)]
        bursts = 1
        for a, b in zip(slots, slots[1:]):
            if a != b:
                bursts += 1
        mean = len(slots) / bursts
        assert 5 < mean < 12

    def test_validation(self):
        with pytest.raises(ValueError):
            BurstyArrivals(num_queues=0)
        with pytest.raises(ValueError):
            BurstyArrivals(num_queues=2, mean_burst_cells=0.5)


class TestMarkovOnOffArrivals:
    def test_emits_only_valid_queues(self):
        arrivals = MarkovOnOffArrivals(num_queues=4, mean_on_slots=10,
                                       mean_off_slots=30, seed=5)
        slots = [arrivals.next_arrival(s) for s in range(3000)]
        assert all(s is None or 0 <= s < 4 for s in slots)
        assert any(s is not None for s in slots)
        assert any(s is None for s in slots)

    def test_duty_cycle_controls_mean_load(self):
        light = MarkovOnOffArrivals(num_queues=8, mean_on_slots=5,
                                    mean_off_slots=95, seed=6)
        heavy = MarkovOnOffArrivals(num_queues=8, mean_on_slots=95,
                                    mean_off_slots=5, seed=6)
        def count(gen):
            return sum(1 for s in range(5000) if gen.next_arrival(s) is not None)
        assert count(light) < count(heavy)

    def test_deterministic_given_seed(self):
        def make():
            return MarkovOnOffArrivals(num_queues=4, seed=7)
        a, b = make(), make()
        assert [a.next_arrival(s) for s in range(500)] == \
               [b.next_arrival(s) for s in range(500)]

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            MarkovOnOffArrivals(num_queues=0)
        with pytest.raises(ValueError):
            MarkovOnOffArrivals(num_queues=2, mean_on_slots=0.5)
        with pytest.raises(ValueError):
            MarkovOnOffArrivals(num_queues=2, peak_rate=0.0)


class TestParetoBurstArrivals:
    def test_long_run_load_close_to_target(self):
        arrivals = ParetoBurstArrivals(num_queues=8, alpha=1.6, load=0.6, seed=8)
        slots = [arrivals.next_arrival(s) for s in range(50_000)]
        busy = sum(1 for s in slots if s is not None)
        # Heavy tails converge slowly; a wide band is the honest assertion.
        assert 0.4 < busy / len(slots) < 0.8

    def test_bursts_are_contiguous_single_queue(self):
        arrivals = ParetoBurstArrivals(num_queues=8, alpha=1.5,
                                       min_burst_cells=4, load=0.5, seed=9)
        slots = [arrivals.next_arrival(s) for s in range(5000)]
        # Within a burst, consecutive busy slots carry the same queue.
        for previous, current in zip(slots, slots[1:]):
            if previous is not None and current is not None:
                assert previous == current

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ParetoBurstArrivals(num_queues=2, alpha=1.0)
        with pytest.raises(ValueError):
            ParetoBurstArrivals(num_queues=2, load=1.0)
        with pytest.raises(ValueError):
            ParetoBurstArrivals(num_queues=2, min_burst_cells=0)


class TestZipfArrivals:
    def test_popularity_is_rank_ordered(self):
        arrivals = ZipfArrivals(num_queues=6, exponent=1.5, seed=10)
        counts = [0] * 6
        for s in range(20_000):
            queue = arrivals.next_arrival(s)
            if queue is not None:
                counts[queue] += 1
        assert counts[0] > counts[2] > counts[5]

    def test_zero_exponent_is_uniform(self):
        arrivals = ZipfArrivals(num_queues=4, exponent=0.0, seed=11)
        assert arrivals.weights == [1.0] * 4

    def test_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            ZipfArrivals(num_queues=4, exponent=-0.1)


class TestTraceArrivals:
    def test_replays_then_idles(self):
        arrivals = TraceArrivals([0, None, 2])
        assert [arrivals.next_arrival(s) for s in range(5)] == [0, None, 2, None, None]

    def test_length(self):
        assert len(TraceArrivals([1, 2, None])) == 3
