"""Tests for the arrival processes."""

import pytest

from repro.traffic.arrivals import (
    BernoulliArrivals,
    BurstyArrivals,
    DeterministicArrivals,
    HotspotArrivals,
    RoundRobinArrivals,
)


class TestDeterministicArrivals:
    def test_replays_and_wraps(self):
        arrivals = DeterministicArrivals([0, None, 2])
        assert [arrivals.next_arrival(s) for s in range(6)] == [0, None, 2, 0, None, 2]

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            DeterministicArrivals([])


class TestRoundRobinArrivals:
    def test_full_load_cycles_queues(self):
        arrivals = RoundRobinArrivals(num_queues=3)
        assert [arrivals.next_arrival(s) for s in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_partial_load_produces_idle_slots(self):
        arrivals = RoundRobinArrivals(num_queues=2, load=0.5, seed=1)
        slots = [arrivals.next_arrival(s) for s in range(2000)]
        idle = sum(1 for s in slots if s is None)
        assert 700 < idle < 1300


class TestBernoulliArrivals:
    def test_load_respected(self):
        arrivals = BernoulliArrivals(num_queues=4, load=0.25, seed=3)
        slots = [arrivals.next_arrival(s) for s in range(4000)]
        busy = sum(1 for s in slots if s is not None)
        assert 800 < busy < 1200

    def test_all_queues_seen_under_uniform_weights(self):
        arrivals = BernoulliArrivals(num_queues=4, load=1.0, seed=5)
        seen = {arrivals.next_arrival(s) for s in range(500)}
        assert seen == {0, 1, 2, 3}

    def test_weights_bias_selection(self):
        arrivals = BernoulliArrivals(num_queues=2, load=1.0, weights=[9.0, 1.0], seed=7)
        slots = [arrivals.next_arrival(s) for s in range(2000)]
        assert slots.count(0) > 3 * slots.count(1)

    def test_validation(self):
        with pytest.raises(ValueError):
            BernoulliArrivals(num_queues=0)
        with pytest.raises(ValueError):
            BernoulliArrivals(num_queues=2, load=1.5)
        with pytest.raises(ValueError):
            BernoulliArrivals(num_queues=2, weights=[1.0])
        with pytest.raises(ValueError):
            BernoulliArrivals(num_queues=2, weights=[1.0, -1.0])

    def test_reproducible_with_same_seed(self):
        a = BernoulliArrivals(num_queues=4, load=0.8, seed=42)
        b = BernoulliArrivals(num_queues=4, load=0.8, seed=42)
        assert [a.next_arrival(s) for s in range(100)] == [b.next_arrival(s) for s in range(100)]


class TestHotspotArrivals:
    def test_hot_queues_dominate(self):
        arrivals = HotspotArrivals(num_queues=8, hot_queues=[0], hot_fraction=0.9,
                                   load=1.0, seed=11)
        slots = [arrivals.next_arrival(s) for s in range(4000)]
        hot = slots.count(0)
        assert hot > 0.8 * len(slots)

    def test_validation(self):
        with pytest.raises(ValueError):
            HotspotArrivals(num_queues=4, hot_queues=[])
        with pytest.raises(ValueError):
            HotspotArrivals(num_queues=4, hot_queues=[9])
        with pytest.raises(ValueError):
            HotspotArrivals(num_queues=4, hot_queues=[0], hot_fraction=1.5)


class TestBurstyArrivals:
    def test_produces_runs_of_same_queue(self):
        arrivals = BurstyArrivals(num_queues=8, mean_burst_cells=16, load=1.0, seed=13)
        slots = [arrivals.next_arrival(s) for s in range(2000)]
        # Count how often consecutive busy slots keep the same queue: with a
        # mean burst of 16 this should be the overwhelming majority.
        same = sum(1 for a, b in zip(slots, slots[1:])
                   if a is not None and a == b)
        assert same > 1500

    def test_mean_burst_about_right(self):
        arrivals = BurstyArrivals(num_queues=4, mean_burst_cells=8, load=1.0, seed=17)
        slots = [arrivals.next_arrival(s) for s in range(8000)]
        bursts = 1
        for a, b in zip(slots, slots[1:]):
            if a != b:
                bursts += 1
        mean = len(slots) / bursts
        assert 5 < mean < 12

    def test_validation(self):
        with pytest.raises(ValueError):
            BurstyArrivals(num_queues=0)
        with pytest.raises(ValueError):
            BurstyArrivals(num_queues=2, mean_burst_cells=0.5)
