"""Setuptools entry point.

The project metadata lives in ``pyproject.toml``; this shim exists so the
package can be installed in editable mode (``pip install -e .``) on machines
whose offline environment lacks the ``wheel`` package required by the PEP 660
editable-install path (pip then falls back to the legacy ``setup.py develop``
route).
"""

from setuptools import setup

setup()
